"""Clients for the serve daemon: async (load generation) and sync.

:class:`AsyncServeClient` keeps one keep-alive connection per instance,
which is what the concurrency tests and the load bench want: N client
instances = N concurrent connections, each issuing sequential requests.

:class:`ServeClient` wraps the stdlib :mod:`http.client` for callers in
the synchronous world (CLI smoke checks, quick scripts).
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any, Dict, List, Optional, Tuple

from ..runtime.budget import Budget


def budget_headers(budget: Optional[Budget]) -> Dict[str, str]:
    """The QoS headers encoding ``budget`` (empty when ``None``)."""
    if budget is None:
        return {}
    headers: Dict[str, str] = {}
    if budget.wall_ms is not None:
        headers["X-Budget-Wall-Ms"] = f"{budget.wall_ms:g}"
    if budget.max_sat_calls is not None:
        headers["X-Budget-Sat-Calls"] = str(budget.max_sat_calls)
    if budget.max_nodes is not None:
        headers["X-Budget-Nodes"] = str(budget.max_nodes)
    return headers


class ServeResponse:
    """Status + parsed payload + headers of one response."""

    def __init__(
        self, status: int, payload: Any, headers: Dict[str, str]
    ):
        self.status = status
        self.payload = payload
        self.headers = headers

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def __repr__(self) -> str:
        return f"ServeResponse({self.status}, {self.payload!r})"


class AsyncServeClient:
    """One keep-alive connection to the daemon.

    Args:
        host / port: daemon address.
        tenant: value for the ``X-Tenant`` header on every request.
    """

    def __init__(self, host: str, port: int, tenant: str = "default"):
        self.host = host
        self.port = port
        self.tenant = tenant
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock: Optional[asyncio.Lock] = None

    async def connect(self) -> "AsyncServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        if self._lock is None:
            self._lock = asyncio.Lock()
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "AsyncServeClient":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> ServeResponse:
        if self._reader is None or self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        assert self._lock is not None
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else b""
        )
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"X-Tenant: {self.tenant}",
            f"Content-Length: {len(body)}",
            "Content-Type: application/json",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        # One request/response exchange at a time per connection: HTTP/1.1
        # keep-alive has no interleaving, so concurrent callers queue here
        # instead of corrupting each other's reads.
        async with self._lock:
            self._writer.write(head + body)
            await self._writer.drain()
            return await self._read_response()

    async def _read_response(self) -> ServeResponse:
        assert self._reader is not None
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        resp_headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            resp_headers[name.strip().lower()] = value.strip()
        length = int(resp_headers.get("content-length", "0") or "0")
        body = await self._reader.readexactly(length) if length else b""
        ctype = resp_headers.get("content-type", "")
        if ctype.startswith("application/json") and body:
            payload: Any = json.loads(body.decode("utf-8"))
        else:
            payload = body.decode("utf-8", errors="replace")
        return ServeResponse(status, payload, resp_headers)

    # ------------------------------------------------------------------
    async def register(
        self, text: str, vocabulary: Optional[List[str]] = None
    ) -> ServeResponse:
        payload: Dict[str, Any] = {"text": text}
        if vocabulary is not None:
            payload["vocabulary"] = list(vocabulary)
        return await self.request("POST", "/v1/databases", payload)

    async def query(
        self,
        db: str,
        task: str = "infers",
        semantics: str = "egcwa",
        query: Optional[str] = None,
        mode: str = "cautious",
        budget: Optional[Budget] = None,
    ) -> ServeResponse:
        payload: Dict[str, Any] = {
            "db": db, "task": task, "semantics": semantics, "mode": mode,
        }
        if query is not None:
            payload["query"] = query
        return await self.request(
            "POST", "/v1/query", payload, headers=budget_headers(budget)
        )

    async def stats(self) -> ServeResponse:
        return await self.request("GET", "/v1/stats")

    async def metrics(self) -> ServeResponse:
        return await self.request("GET", "/metrics")

    async def healthz(self) -> ServeResponse:
        return await self.request("GET", "/healthz")


class ServeClient:
    """Synchronous client over :mod:`http.client` (one connection)."""

    def __init__(self, host: str, port: int, tenant: str = "default"):
        self.host = host
        self.port = port
        self.tenant = tenant
        self._conn = http.client.HTTPConnection(host, port, timeout=30)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> ServeResponse:
        body = json.dumps(payload) if payload is not None else None
        all_headers = {
            "X-Tenant": self.tenant,
            "Content-Type": "application/json",
        }
        all_headers.update(headers or {})
        self._conn.request(method, path, body=body, headers=all_headers)
        raw = self._conn.getresponse()
        data = raw.read()
        resp_headers = {k.lower(): v for k, v in raw.getheaders()}
        ctype = resp_headers.get("content-type", "")
        if ctype.startswith("application/json") and data:
            parsed: Any = json.loads(data.decode("utf-8"))
        else:
            parsed = data.decode("utf-8", errors="replace")
        return ServeResponse(raw.status, parsed, resp_headers)

    def register(
        self, text: str, vocabulary: Optional[List[str]] = None
    ) -> ServeResponse:
        payload: Dict[str, Any] = {"text": text}
        if vocabulary is not None:
            payload["vocabulary"] = list(vocabulary)
        return self.request("POST", "/v1/databases", payload)

    def query(self, **kwargs: Any) -> ServeResponse:
        budget = kwargs.pop("budget", None)
        return self.request(
            "POST", "/v1/query", kwargs, headers=budget_headers(budget)
        )

    def stats(self) -> ServeResponse:
        return self.request("GET", "/v1/stats")

    def metrics(self) -> ServeResponse:
        return self.request("GET", "/metrics")

    def healthz(self) -> ServeResponse:
        return self.request("GET", "/healthz")


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``."""
    host, _, port = address.rpartition(":")
    return host or "127.0.0.1", int(port)
