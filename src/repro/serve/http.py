"""Minimal HTTP/1.1 framing over :mod:`asyncio` streams.

The serve layer deliberately speaks a small, dependency-free subset of
HTTP/1.1 — enough for JSON request/response bodies, the Prometheus
text exposition and keep-alive connections — rather than pulling in an
ASGI stack.  Only what the daemon needs is implemented:

* request line + headers + ``Content-Length`` bodies (no chunked
  transfer, no multipart);
* responses with JSON, plain-text or raw payloads;
* ``Connection: keep-alive`` by default, ``close`` honoured both ways;
* hard limits on header block and body size, so a misbehaving client
  cannot balloon the daemon's memory.

:class:`HttpError` converts to a structured JSON error response; the
routing layer raises it for every client-visible failure (bad request,
unknown database, admission reject, tripped budget).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

#: Upper bound on the request-line + header block, bytes.
MAX_HEADER_BYTES = 64 * 1024

#: Upper bound on a request body, bytes (a database text or a query).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Reason phrases for the status codes the daemon emits.
REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A client-visible failure, rendered as a JSON error response.

    Attributes:
        status: HTTP status code.
        code: stable machine-readable error code (``"admission"``,
            ``"timeout"``, ``"budget"``, ``"bad_request"``, ...).
        retry_after: seconds for the ``Retry-After`` header (503/429
            responses that are worth retrying).
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
        detail: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after
        self.detail = detail or {}

    def to_response(self) -> "Response":
        payload = {"error": self.code, "message": self.message}
        payload.update(self.detail)
        headers = {}
        if self.retry_after is not None:
            headers["Retry-After"] = f"{self.retry_after:g}"
        return Response(self.status, payload, headers=headers)


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""

    def json(self) -> Dict[str, Any]:
        """The body parsed as a JSON object (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, "bad_json", f"invalid JSON body: {exc}")
        if not isinstance(payload, dict):
            raise HttpError(400, "bad_json", "JSON body must be an object")
        return payload

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """One HTTP response: a JSON-serializable payload, text, or bytes."""

    status: int = 200
    payload: Any = None
    headers: Dict[str, str] = field(default_factory=dict)
    content_type: Optional[str] = None

    def encode(self, keep_alive: bool = True) -> bytes:
        if isinstance(self.payload, bytes):
            body = self.payload
            ctype = self.content_type or "application/octet-stream"
        elif isinstance(self.payload, str):
            body = self.payload.encode("utf-8")
            ctype = self.content_type or "text/plain; charset=utf-8"
        elif self.payload is None:
            body = b""
            ctype = self.content_type or "text/plain; charset=utf-8"
        else:
            body = (
                json.dumps(self.payload, sort_keys=True) + "\n"
            ).encode("utf-8")
            ctype = self.content_type or "application/json"
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + body


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[Request]:
    """Read one request from the stream, or ``None`` on a clean EOF.

    Raises :class:`HttpError` on malformed framing or oversized
    header/body blocks.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "bad_request", "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "too_large", "header block too large")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "too_large", "header block too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "bad_request", f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, "bad_request", f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, "too_large", f"body of {length} bytes refused")
    body = await reader.readexactly(length) if length else b""
    return Request(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


async def write_response(
    writer: asyncio.StreamWriter,
    response: Response,
    keep_alive: bool = True,
) -> None:
    """Serialize and flush one response."""
    writer.write(response.encode(keep_alive=keep_alive))
    await writer.drain()


def split_host_port(address: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (CLI/bench convenience)."""
    host, sep, port = address.rpartition(":")
    if not sep:
        raise ValueError(f"expected host:port, got {address!r}")
    return host, int(port)
