"""The asyncio HTTP daemon exposing :class:`~repro.serve.service.QueryService`.

Endpoints (all JSON unless noted):

===========================  =========================================
``GET  /healthz``            liveness probe
``GET  /metrics``            Prometheus text exposition (plain text)
``GET  /trace``              drain finished trace roots as JSON lines
``GET  /v1/stats``           service / tenant / cache / pool counters
``POST /v1/databases``       register ``{"text": "a | b. c :- a."}``
``GET  /v1/databases``       list this tenant's databases
``POST /v1/query``           evaluate ``{"db"|"database", "task",
                             "semantics", "query", "mode"}``
===========================  =========================================

Headers:

* ``X-Tenant`` — tenant name (default ``"default"``); every database,
  session and admission queue is namespaced by it.
* ``X-Budget-Wall-Ms`` / ``X-Budget-Sat-Calls`` / ``X-Budget-Nodes`` —
  per-request QoS ceilings riding the cooperative
  :class:`~repro.runtime.budget.Budget`.  A tripped wall clock returns
  503 with ``Retry-After``; a tripped SAT-call or node ceiling returns
  429.

The daemon is a single :func:`asyncio.start_server` accept loop;
evaluation happens on the service's worker threads, so slow queries do
not stall accepts, health checks or metrics scrapes.  Tests and the
bench embed :class:`ReproServer` in their own event loop; the CLI's
``repro-ddb serve`` runs :func:`run_server` until interrupted.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, Optional

from ..obs import trace as _trace
from ..runtime.budget import Budget
from .http import HttpError, Request, Response, read_request, write_response
from .service import QueryService

#: Tenant used when the ``X-Tenant`` header is absent.
DEFAULT_TENANT = "default"


def budget_from_headers(request: Request) -> Optional[Budget]:
    """The QoS :class:`Budget` encoded in the request headers, or
    ``None`` when no ceiling header is present."""
    try:
        wall = request.header("x-budget-wall-ms")
        sat = request.header("x-budget-sat-calls")
        nodes = request.header("x-budget-nodes")
        if wall is None and sat is None and nodes is None:
            return None
        return Budget(
            wall_ms=float(wall) if wall is not None else None,
            max_sat_calls=int(sat) if sat is not None else None,
            max_nodes=int(nodes) if nodes is not None else None,
        )
    except ValueError as exc:
        raise HttpError(400, "bad_budget", f"invalid budget header: {exc}")


class ReproServer:
    """The HTTP front door over one :class:`QueryService`.

    Args:
        service: the stateful core (owned by the caller; not closed on
            :meth:`stop` unless ``own_service`` is set).
        host / port: bind address (``port=0`` picks an ephemeral port,
            readable from :attr:`port` after :meth:`start`).
        tracing: install a recording tracer at startup so ``/trace``
            drains span JSONL (the module-global tracer is process-wide;
            pass ``False`` to leave it untouched).
    """

    def __init__(
        self,
        service: Optional[QueryService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        tracing: bool = False,
        own_service: bool = True,
    ):
        self.service = service if service is not None else QueryService()
        self.host = host
        self.port = port
        self.tracing = tracing
        self.own_service = own_service
        self._server: Optional[asyncio.base_events.Server] = None
        self._tracer: Optional[_trace.Tracer] = None
        self._previous_tracer = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self.tracing:
            self._tracer = _trace.Tracer(max_finished=4096)
            self._previous_tracer = _trace.set_tracer(self._tracer)
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._previous_tracer is not None:
            _trace.set_tracer(self._previous_tracer)
            self._previous_tracer = None
        if self.own_service:
            self.service.close()

    async def __aenter__(self) -> "ReproServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await write_response(
                        writer, exc.to_response(), keep_alive=False
                    )
                    break
                if request is None:
                    break
                try:
                    response = await self._route(request)
                except HttpError as exc:
                    response = exc.to_response()
                except Exception as exc:  # last-resort 500
                    response = HttpError(
                        500, "internal", f"unhandled error: {exc}"
                    ).to_response()
                keep = request.keep_alive
                await write_response(writer, response, keep_alive=keep)
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                # Daemon shutdown cancelled this handler mid-close; the
                # transport is already going away.
                pass

    async def _route(self, request: Request) -> Response:
        tenant = request.header("x-tenant", DEFAULT_TENANT) or DEFAULT_TENANT
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return Response(200, {"status": "ok"})
        if path == "/metrics" and method == "GET":
            from ..obs.metrics import METRICS

            return Response(
                200, METRICS.expose(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/trace" and method == "GET":
            return self._drain_trace()
        if path == "/v1/stats" and method == "GET":
            return Response(200, self.service.stats())
        if path == "/v1/databases":
            if method == "POST":
                payload = request.json()
                text = payload.get("text")
                if not isinstance(text, str) or not text.strip():
                    raise HttpError(
                        400, "bad_request", "payload needs a 'text' field"
                    )
                vocabulary = payload.get("vocabulary")
                if vocabulary is not None and not isinstance(
                    vocabulary, list
                ):
                    raise HttpError(
                        400, "bad_request",
                        "'vocabulary' must be a list of atoms",
                    )
                return Response(
                    200,
                    self.service.register_database(
                        tenant, text, vocabulary
                    ),
                )
            if method == "GET":
                return Response(200, self.service.list_databases(tenant))
            raise HttpError(405, "method_not_allowed", f"{method} {path}")
        if path == "/v1/query" and method == "POST":
            budget = budget_from_headers(request)
            item = self.service.make_item(tenant, request.json(), budget)
            result = await self.service.submit(item)
            return Response(
                result.status, result.payload, headers=result.headers
            )
        raise HttpError(404, "not_found", f"no route for {method} {path}")

    def _drain_trace(self) -> Response:
        tracer = self._tracer or _trace.active_tracer()
        if tracer.is_noop:
            return Response(
                200, "", content_type="application/x-ndjson"
            )
        payload = tracer.export_jsonl()
        tracer.clear()
        return Response(
            200, payload, content_type="application/x-ndjson"
        )


async def serve_forever(
    server: ReproServer, ready: Optional[threading.Event] = None
) -> None:
    """Start ``server`` and block until cancelled (the CLI path)."""
    await server.start()
    if ready is not None:
        ready.set()
    try:
        await asyncio.Event().wait()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


def run_server(
    service: Optional[QueryService] = None,
    host: str = "127.0.0.1",
    port: int = 8035,
    tracing: bool = True,
) -> int:
    """Blocking daemon entry point (``repro-ddb serve``)."""
    server = ReproServer(
        service=service, host=host, port=port, tracing=tracing
    )

    async def main() -> None:
        await server.start()
        print(
            f"repro-ddb serve: listening on http://{server.host}:"
            f"{server.port} (engine={server.service.engine}, "
            f"workers={server.service.workers}, "
            f"max-queue={server.service.max_queue})",
            flush=True,
        )
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("repro-ddb serve: shutting down", flush=True)
    return 0


class BackgroundServer:
    """A daemon running on its own thread + event loop.

    For callers that live in the synchronous world (CLI smoke tests, the
    load bench's subprocess-free mode)::

        with BackgroundServer(QueryService()) as handle:
            client = ServeClient("127.0.0.1", handle.port)
            ...

    The context manager guarantees a clean shutdown: the loop stops, the
    thread joins, the service's worker pool drains.
    """

    def __init__(
        self,
        service: Optional[QueryService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        tracing: bool = False,
    ):
        self.server = ReproServer(
            service=service, host=host, port=port, tracing=tracing
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def service(self) -> QueryService:
        return self.server.service

    def start(self, timeout: float = 10.0) -> "BackgroundServer":
        self._loop = asyncio.new_event_loop()

        def runner() -> None:
            assert self._loop is not None
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            self._ready.set()
            self._loop.run_forever()
            # Drain the shutdown coroutine scheduled by stop().
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-serve-daemon", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("serve daemon failed to start in time")
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def stats_snapshot(service: QueryService) -> Dict[str, Any]:
    """Convenience re-export for benches and tests."""
    return service.stats()
