"""The multi-tenant query service behind the serve daemon.

:class:`QueryService` is protocol-agnostic: the HTTP layer
(:mod:`repro.serve.server`) translates requests into
:class:`QueryItem` values and awaits :meth:`QueryService.submit`; the
service owns everything stateful:

* **tenant registry** — each tenant (the ``X-Tenant`` header) gets its
  own database namespace and its own
  :class:`~repro.session.DatabaseSession` per ``(database, semantics)``,
  so one tenant's sessions, certificates and counters never mix with
  another's even when the database texts are identical;
* **admission control** — a bounded per-tenant pending count; a tenant
  that already has ``max_queue`` queued + running queries gets a
  structured 429 *before* any work is enqueued;
* **cross-request batching** — concurrent queries against the same
  ``(tenant, database, semantics)`` coalesce into one batch that runs on
  a single session inside a single solver-pool checkout window: one
  fragment/plan profile, one warm CDCL scope, many answers fanned back
  out.  Queries for different tenants or different semantics never share
  a batch, however equal their database texts hash.

Evaluation is CPU-bound synchronous code, so batches execute on a
bounded thread pool; every global the workers touch (engine LRU cache,
solver pool, metrics registry, runtime counters) takes its own lock, and
the per-key worker loop guarantees a session is only ever driven by one
thread at a time.

Per-request QoS rides the cooperative :class:`~repro.runtime.budget.
Budget` hooks: the wall-clock / SAT-call / node ceilings from the
request run the query under a :func:`~repro.runtime.budget.budget_scope`
regardless of engine, and a tripped scope maps to a structured HTTP
error — wall-clock timeout → 503 with ``Retry-After``, SAT-call or node
ceiling → 429.  Transient faults (injected or real) map to 503 without
poisoning the session: the next query on the same session is unaffected.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import asyncio
import contextvars

from ..errors import ReproError
from ..logic.database import DisjunctiveDatabase
from ..logic.parser import parse_database
from ..obs.certify import DEFAULT_CERTIFIER, Certifier
from ..obs.metrics import METRICS
from ..runtime.budget import Budget, BudgetExceeded, budget_scope
from ..runtime.faults import FaultInjected, FaultPlan, WorkerCrash, fault_plan
from ..sat.incremental import checkout_token, solver_pool_stats
from ..semantics import resolve_name
from ..session import DatabaseSession
from .http import HttpError

#: Tasks the service exposes, mapped onto session entry points.
TASKS = ("infers", "infers_literal", "has_model", "model_set")

#: Default per-tenant admission bound (queued + running queries).
DEFAULT_MAX_QUEUE = 64

#: Default evaluation thread count.
DEFAULT_WORKERS = 4

#: Default refusal threshold for ``model_set`` responses.
DEFAULT_MAX_MODELS = 10_000

#: Suggested client back-off for retryable errors, seconds.
RETRY_AFTER_S = 1.0

_BATCH_WIDTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def canonical_db_id(db: DisjunctiveDatabase) -> str:
    """A stable content id: SHA-256 of the canonical rendering.

    The clause text alone is not the whole database — the paper's
    vocabulary ``V`` may strictly contain the occurring atoms, and the
    closed-world semantics genuinely depend on the silent atoms (GCWA
    negates an atom no clause mentions).  When the vocabulary is wider
    than the occurring atoms it is folded into the hash, so two
    databases with equal clauses but different universes get different
    ids.
    """
    payload = str(db)
    occurring = frozenset(a for c in db.clauses for a in c.atoms)
    if db.vocabulary != occurring:
        payload += "\n%vocabulary: " + " ".join(sorted(db.vocabulary))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class BatchKey:
    """What may legally share one batch: tenant, database, semantics.

    The key deliberately includes the *tenant*: two tenants uploading
    byte-identical databases still run in separate batches on separate
    sessions (isolation beats the marginal solver reuse, and the engine
    cache still deduplicates the pure derived objects underneath).
    """

    tenant: str
    db_id: str
    semantics: str


@dataclass
class QueryItem:
    """One admitted query, on its way to a batch."""

    tenant: str
    db_id: str
    semantics: str
    task: str
    query: Optional[str] = None
    mode: str = "cautious"
    budget: Optional[Budget] = None

    @property
    def key(self) -> BatchKey:
        return BatchKey(self.tenant, self.db_id, self.semantics)


@dataclass
class ItemResult:
    """The outcome of one item: an HTTP status plus a JSON payload."""

    status: int
    payload: Dict[str, Any]
    headers: Dict[str, str] = field(default_factory=dict)


class Tenant:
    """Per-tenant namespace: databases, sessions, counters."""

    def __init__(self, name: str):
        self.name = name
        self.databases: Dict[str, DisjunctiveDatabase] = {}
        self.sessions: Dict[Tuple[str, str], DatabaseSession] = {}
        self.pending = 0
        self.queries = 0
        self.rejects = 0
        self.errors = 0

    def stats(self) -> Dict[str, Any]:
        sessions = self.sessions.values()
        return {
            "databases": len(self.databases),
            "sessions": len(self.sessions),
            "pending": self.pending,
            "queries": self.queries,
            "rejects": self.rejects,
            "errors": self.errors,
            "queries_answered": sum(s.queries_answered for s in sessions),
            "total_sat_calls": sum(s.total_sat_calls for s in sessions),
            "certificates_checked": sum(
                s.certificates_checked for s in sessions
            ),
            "certificate_violations": sum(
                s.certificate_violations for s in sessions
            ),
        }


class _Batch:
    """The pending items of one key (drained whole by the key worker)."""

    __slots__ = ("items",)

    def __init__(self) -> None:
        self.items: List[Tuple[QueryItem, "asyncio.Future[ItemResult]"]] = []


@contextmanager
def _maybe(cm):
    """``with cm`` when ``cm`` is not None, else a no-op block."""
    if cm is None:
        yield None
    else:
        with cm as value:
            yield value


class QueryService:
    """The serve daemon's stateful core.  See the module docstring.

    Args:
        engine: the session engine every tenant session uses
            (``"cached"`` by default; ``"planned"`` and ``"resilient"``
            are the other production-shaped choices).
        max_queue: per-tenant admission bound (queued + running).
        workers: evaluation thread count (= maximum concurrent batches).
        max_models: refuse ``model_set`` responses larger than this.
        default_budget: budget applied to requests that set no QoS
            headers (``None`` = unbounded).
        certifier: complexity certifier threaded into every session.
        fault_plans: optional per-tenant
            :class:`~repro.runtime.faults.FaultPlan`, installed around
            that tenant's batches (fault-injection tests and demos).
        batch_hook: test hook called as ``hook(key, width)`` in the
            worker thread immediately before a batch evaluates; a
            blocking hook makes the *next* batch coalesce, which is how
            the batching tests script deterministic widths.
    """

    def __init__(
        self,
        engine: str = "cached",
        max_queue: int = DEFAULT_MAX_QUEUE,
        workers: int = DEFAULT_WORKERS,
        max_models: int = DEFAULT_MAX_MODELS,
        default_budget: Optional[Budget] = None,
        certifier: Optional[Certifier] = DEFAULT_CERTIFIER,
        fault_plans: Optional[Dict[str, FaultPlan]] = None,
        batch_hook: Optional[Callable[[BatchKey, int], None]] = None,
    ):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.engine = engine
        self.max_queue = max_queue
        self.workers = workers
        self.max_models = max_models
        self.default_budget = default_budget
        self.certifier = certifier
        self.fault_plans = dict(fault_plans or {})
        self.batch_hook = batch_hook
        self.started_at = time.time()
        self._tenants: Dict[str, Tenant] = {}
        self._batches: Dict[BatchKey, _Batch] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        # Service totals (event-loop confined; tests assert
        # admitted == completed and requests == admitted + rejected).
        self.requests = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.batches = 0
        self.batched_items = 0
        # Instruments (process-wide; registration is idempotent).
        self._m_requests = METRICS.counter(
            "repro_serve_requests_total",
            "Queries received by the serve layer",
            labelnames=("task",),
        )
        self._m_rejects = METRICS.counter(
            "repro_serve_admission_rejects_total",
            "Queries refused at admission (queue bound or unknown database)",
            labelnames=("tenant",),
        )
        self._m_responses = METRICS.counter(
            "repro_serve_responses_total",
            "Serve responses by HTTP status",
            labelnames=("status",),
        )
        self._m_queue_depth = METRICS.gauge(
            "repro_serve_queue_depth",
            "Queries queued or running across all tenants",
        )
        self._m_batches = METRICS.counter(
            "repro_serve_batches_total",
            "Coalesced batches executed",
        )
        self._m_batch_width = METRICS.histogram(
            "repro_serve_batch_width",
            "Queries coalesced into one batch",
            buckets=_BATCH_WIDTH_BUCKETS,
        )
        self._m_latency = METRICS.histogram(
            "repro_serve_latency_ms",
            "Per-query evaluation latency, milliseconds",
            labelnames=("tenant",),
        )

    # ------------------------------------------------------------------
    # Tenant / database registry (event-loop confined)
    # ------------------------------------------------------------------
    def tenant(self, name: str) -> Tenant:
        state = self._tenants.get(name)
        if state is None:
            state = self._tenants[name] = Tenant(name)
        return state

    def register_database(
        self,
        tenant: str,
        text: str,
        vocabulary: Optional[List[str]] = None,
    ) -> Dict[str, Any]:
        """Parse and register a database under ``tenant``; idempotent
        (re-registering the same content returns the same id).

        ``vocabulary`` widens the universe ``V`` beyond the atoms the
        clause text mentions — without it a database like ``{v3.}`` over
        ``V = {v1, v3}`` would silently collapse to ``V = {v3}`` on the
        wire and the closed-world semantics would answer differently.
        """
        try:
            db = parse_database(text)
        except ReproError as exc:
            raise HttpError(400, "bad_database", str(exc))
        if vocabulary is not None:
            if not all(isinstance(atom, str) for atom in vocabulary):
                raise HttpError(
                    400, "bad_database", "'vocabulary' must be strings"
                )
            db = db.with_vocabulary(vocabulary)
        db_id = canonical_db_id(db)
        state = self.tenant(tenant)
        state.databases[db_id] = db
        return {
            "db": db_id,
            "atoms": len(db.vocabulary),
            "clauses": len(list(db)),
        }

    def list_databases(self, tenant: str) -> Dict[str, Any]:
        state = self.tenant(tenant)
        return {
            "databases": [
                {
                    "db": db_id,
                    "atoms": len(db.vocabulary),
                    "clauses": len(list(db)),
                }
                for db_id, db in sorted(state.databases.items())
            ]
        }

    def _session_for(self, key: BatchKey) -> DatabaseSession:
        state = self.tenant(key.tenant)
        db = state.databases.get(key.db_id)
        if db is None:
            raise HttpError(
                404, "unknown_database",
                f"tenant {key.tenant!r} has no database {key.db_id!r}",
            )
        skey = (key.db_id, key.semantics)
        session = state.sessions.get(skey)
        if session is None:
            session = DatabaseSession(
                db,
                default_semantics=key.semantics,
                engine=self.engine,
                certifier=self.certifier,
            )
            state.sessions[skey] = session
        return session

    # ------------------------------------------------------------------
    # Admission + batching (event-loop confined)
    # ------------------------------------------------------------------
    def make_item(
        self,
        tenant: str,
        payload: Dict[str, Any],
        budget: Optional[Budget] = None,
    ) -> QueryItem:
        """Validate one query payload into a :class:`QueryItem`.

        A payload may name a registered database (``"db"``) or carry the
        database text inline (``"database"``), which registers it under
        its content id first.
        """
        text = payload.get("database")
        if text is not None:
            db_id = self.register_database(
                tenant, str(text), payload.get("vocabulary")
            )["db"]
        else:
            db_id = payload.get("db")
        if not db_id:
            raise HttpError(
                400, "bad_request", "payload needs 'db' or 'database'"
            )
        task = payload.get("task", "infers")
        if task not in TASKS:
            raise HttpError(
                400, "bad_request",
                f"unknown task {task!r} (expected one of {TASKS})",
            )
        try:
            semantics = resolve_name(payload.get("semantics", "egcwa"))
        except ReproError as exc:
            raise HttpError(400, "bad_semantics", str(exc))
        query = payload.get("query")
        if task in ("infers", "infers_literal") and not query:
            raise HttpError(
                400, "bad_request", f"task {task!r} needs a 'query'"
            )
        mode = payload.get("mode", "cautious")
        if mode not in ("cautious", "brave"):
            raise HttpError(400, "bad_request", f"unknown mode {mode!r}")
        return QueryItem(
            tenant=tenant,
            db_id=str(db_id),
            semantics=semantics,
            task=task,
            query=query,
            mode=mode,
            budget=budget if budget is not None else self.default_budget,
        )

    async def submit(self, item: QueryItem) -> ItemResult:
        """Admit, batch, evaluate — the one entry point per query."""
        self.requests += 1
        self._m_requests.labels(task=item.task).inc()
        state = self.tenant(item.tenant)
        if state.pending >= self.max_queue:
            state.rejects += 1
            self.rejected += 1
            self._m_rejects.labels(tenant=item.tenant).inc()
            error = HttpError(
                429, "admission",
                f"tenant {item.tenant!r} has {state.pending} queries "
                f"queued or running (bound {self.max_queue})",
                retry_after=RETRY_AFTER_S,
            )
            self._m_responses.labels(status="429").inc()
            response = error.to_response()
            return ItemResult(429, response.payload, dict(response.headers))
        # Resolve the session *before* queueing so an unknown database is
        # a 404 now, not a batch-poisoning exception later.  The refusal
        # still counts as a rejection so requests == admitted + rejected.
        try:
            session = self._session_for(item.key)
        except HttpError as error:
            state.rejects += 1
            self.rejected += 1
            self._m_rejects.labels(tenant=item.tenant).inc()
            self._m_responses.labels(status=str(error.status)).inc()
            response = error.to_response()
            return ItemResult(
                error.status, response.payload, dict(response.headers)
            )
        self.admitted += 1
        state.pending += 1
        state.queries += 1
        self._m_queue_depth.inc()
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[ItemResult]" = loop.create_future()
        batch = self._batches.get(item.key)
        if batch is None:
            batch = self._batches[item.key] = _Batch()
            batch.items.append((item, future))
            asyncio.ensure_future(self._drain_key(item.key, session))
        else:
            batch.items.append((item, future))
        try:
            result = await future
        finally:
            state.pending -= 1
            self._m_queue_depth.dec()
            self.completed += 1
        if result.status >= 400:
            state.errors += 1
        self._m_responses.labels(status=str(result.status)).inc()
        return result

    async def _drain_key(
        self, key: BatchKey, session: DatabaseSession
    ) -> None:
        """The per-key worker: repeatedly drain every pending item of
        ``key`` into one batch and evaluate it on the shared session.
        Exactly one drain loop exists per live key, so batches for one
        session never run concurrently."""
        loop = asyncio.get_running_loop()
        while True:
            batch = self._batches[key]
            items = batch.items
            if not items:
                # No arrivals while the last batch ran: retire the key.
                del self._batches[key]
                return
            batch.items = []
            self.batches += 1
            self.batched_items += len(items)
            self._m_batches.inc()
            self._m_batch_width.observe(float(len(items)))
            context = contextvars.copy_context()
            try:
                results = await loop.run_in_executor(
                    self._executor,
                    context.run,
                    self._run_batch,
                    key,
                    session,
                    [item for item, _ in items],
                )
            except Exception as exc:  # worker crashed outside item scope
                error = HttpError(
                    500, "internal", f"batch execution failed: {exc}"
                )
                results = [
                    ItemResult(500, error.to_response().payload)
                    for _ in items
                ]
            for (_, future), result in zip(items, results):
                if not future.done():
                    future.set_result(result)

    # ------------------------------------------------------------------
    # Batch evaluation (worker threads)
    # ------------------------------------------------------------------
    def _run_batch(
        self,
        key: BatchKey,
        session: DatabaseSession,
        items: List[QueryItem],
    ) -> List[ItemResult]:
        """Evaluate one batch on its shared session.

        Runs in a worker thread.  One solver-pool checkout window spans
        the whole batch (a retry inside it is a repeat checkout, not a
        fresh reuse), and the tenant's fault plan — when configured — is
        installed around the batch, exactly as a real outage would hit
        every query in flight.
        """
        plan = self.fault_plans.get(key.tenant)
        if self.batch_hook is not None:
            self.batch_hook(key, len(items))
        width = len(items)
        results = []
        with checkout_token():
            with _maybe(fault_plan(plan) if plan is not None else None):
                for item in items:
                    results.append(self._run_one(session, item, width))
        return results

    def _run_one(
        self, session: DatabaseSession, item: QueryItem, width: int
    ) -> ItemResult:
        start = time.perf_counter()
        try:
            scope = (
                budget_scope(item.budget)
                if item.budget is not None and not item.budget.unbounded
                else None
            )
            with _maybe(scope):
                payload = self._evaluate(session, item)
            status, headers = 200, {}
        except HttpError as exc:
            response = exc.to_response()
            status, payload, headers = (
                exc.status, response.payload, dict(response.headers)
            )
        except BudgetExceeded as exc:
            error = self._budget_error(exc)
            response = error.to_response()
            status, payload, headers = (
                error.status, response.payload, dict(response.headers)
            )
        except (FaultInjected, WorkerCrash) as exc:
            error = HttpError(
                503, "transient", f"transient fault: {exc}",
                retry_after=RETRY_AFTER_S,
            )
            response = error.to_response()
            status, payload, headers = (
                error.status, response.payload, dict(response.headers)
            )
        except ReproError as exc:
            error = HttpError(400, "bad_request", str(exc))
            status, payload, headers = 400, error.to_response().payload, {}
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self._m_latency.labels(tenant=item.tenant).observe(elapsed_ms)
        payload.setdefault("tenant", item.tenant)
        payload.setdefault("db", item.db_id)
        payload.setdefault("task", item.task)
        payload.setdefault("semantics", item.semantics)
        payload["batch_width"] = width
        payload["elapsed_ms"] = round(elapsed_ms, 3)
        return ItemResult(status, payload, headers)

    def _budget_error(self, exc: BudgetExceeded) -> HttpError:
        usage = {
            "resource": exc.resource,
            "elapsed_ms": round(exc.usage.elapsed_ms, 3),
            "sat_calls": exc.usage.sat_calls,
            "nodes": exc.usage.nodes,
        }
        if exc.resource == "wall_ms":
            return HttpError(
                503, "timeout", str(exc),
                retry_after=RETRY_AFTER_S, detail={"usage": usage},
            )
        return HttpError(
            429, "budget", str(exc),
            retry_after=RETRY_AFTER_S, detail={"usage": usage},
        )

    def _evaluate(
        self, session: DatabaseSession, item: QueryItem
    ) -> Dict[str, Any]:
        if item.task == "has_model":
            return {"verdict": bool(session.has_model(item.semantics))}
        if item.task == "model_set":
            models = session.models(item.semantics)
            if len(models) > self.max_models:
                raise HttpError(
                    500, "too_many_models",
                    f"{len(models)} models exceed the service bound "
                    f"{self.max_models}",
                )
            return {
                "models": sorted(sorted(model) for model in models),
                "count": len(models),
            }
        if item.task == "infers_literal":
            answer = session.ask_literal(item.query, item.semantics)
        else:
            answer = session.ask(
                item.query, semantics=item.semantics, mode=item.mode
            )
        payload: Dict[str, Any] = {
            "verdict": bool(answer.verdict),
            "sat_calls": answer.sat_calls,
        }
        if answer.observation is not None:
            payload["np_calls"] = answer.observation.np_calls
            payload["sigma2_dispatches"] = (
                answer.observation.sigma2_dispatches
            )
        if answer.complexity is not None:
            payload["complexity_ok"] = answer.complexity.ok
            claim = answer.complexity.claim
            payload["complexity_class"] = getattr(
                getattr(claim, "upper", claim), "value", str(claim)
            )
        if answer.plan is not None:
            payload["plan"] = answer.plan.procedure
        if answer.certificate is not None:
            payload["counter_model"] = str(answer.certificate.model)
        return payload

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Service totals, per-tenant breakdowns, and the cache / pool /
        runtime counters every query shares."""
        from ..engine.cache import cache_stats
        from ..runtime.budget import RUNTIME_STATS

        cache = cache_stats()
        return {
            "engine": self.engine,
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests": self.requests,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "in_flight": self.admitted - self.completed,
            "batches": self.batches,
            "batched_items": self.batched_items,
            "mean_batch_width": (
                round(self.batched_items / self.batches, 3)
                if self.batches
                else 0.0
            ),
            "tenants": {
                name: tenant.stats()
                for name, tenant in sorted(self._tenants.items())
            },
            "cache": {
                name: cache[name]
                for name in (
                    "entries", "maxsize", "hits", "misses", "evictions",
                    "hit_rate",
                )
            },
            "solver_pool": solver_pool_stats(),
            "runtime": RUNTIME_STATS.snapshot(),
        }

    def close(self) -> None:
        """Shut the evaluation pool down (idempotent)."""
        self._executor.shutdown(wait=True)
