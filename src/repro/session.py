"""High-level query sessions.

A :class:`DatabaseSession` wraps one database and answers repeated
queries under any of the semantics, reusing solver state where the
engines allow it and attaching oracle-usage accounting and certificates
to every answer.  This is the interface an application (or the CLI in a
future interactive mode) would program against:

    session = DatabaseSession(parse_database("a | b. c :- a."))
    answer = session.ask("~a | ~b", semantics="egcwa")
    answer.verdict          # True
    answer.sat_calls        # NP-oracle calls spent on this query
    session.ask("c").certificate.model   # a counter-model, checkable
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Union

from .complexity.oracles import count_sat_calls
from .errors import ReproError
from .obs import trace as _trace
from .obs.accounting import (
    OracleObservation,
    observe,
    record_plan_outcome,
)
from .obs.certify import (
    DEFAULT_CERTIFIER,
    Certifier,
    ComplexityCertificate,
    TASK_FOR_METHOD,
)
from .sat.incremental import SOLVER_POOL, solver_pool_stats
from .logic.atoms import Literal
from .logic.database import DisjunctiveDatabase
from .logic.formula import Formula
from .logic.parser import parse_formula
from .runtime.budget import RUNTIME_STATS, Budget
from .semantics import Semantics, get_semantics, resolve_name
from .semantics.explain import (
    CounterModelCertificate,
    explain_non_inference,
)


@dataclass
class Answer:
    """The result of one session query.

    Attributes:
        verdict: the inference verdict.
        semantics: canonical semantics name used.
        query: the parsed query formula.
        sat_calls: NP-oracle calls this query spent.
        certificate: for a negative cautious verdict, a checkable
            counter-model (``None`` for positive verdicts, and for
            engines without a certificate path).
        solver_stats: per-query *delta* of the pooled CDCL search
            statistics (decisions, conflicts, propagations, ...).  Pooled
            solvers outlive queries, so their raw counters are lifetime
            totals; the session snapshots them around each query and
            reports only what this query spent.
        observation: the oracle work this query was observed doing
            (NP calls, Σ₂ᵖ dispatches, nodes, dispatch depth).
        complexity: the Table 1/Table 2 complexity certificate for this
            query — the observation scored against the claimed class
            (``None`` for queries outside the tables, e.g. brave mode).
        plan: for ``engine="planned"`` sessions, the
            :class:`~repro.analysis.planner.QueryPlan` the fragment
            planner chose for this query — which procedure ran and the
            complexity class it claims (``None`` on other engines).
    """

    verdict: bool
    semantics: str
    query: Formula
    sat_calls: int = 0
    certificate: Optional[CounterModelCertificate] = None
    solver_stats: Optional[Dict[str, int]] = None
    observation: Optional[OracleObservation] = None
    complexity: Optional[ComplexityCertificate] = None
    plan: Optional[object] = None

    def __bool__(self) -> bool:
        return self.verdict

    def render(self) -> str:
        text = (
            f"{self.semantics.upper()} |= {self.query}: {self.verdict}"
            f"  [{self.sat_calls} NP-oracle calls]"
        )
        if self.certificate is not None:
            text += f"\n  counter-model: {self.certificate.model}"
        if self.complexity is not None and not self.complexity.ok:
            text += f"\n  complexity: {self.complexity.render()}"
        if self.plan is not None:
            text += f"\n  plan: {self.plan.render()}"
        return text


class DatabaseSession:
    """Repeated queries against one database.

    Args:
        db: the database (immutable; derive a new session for updates).
        default_semantics: semantics used when a query names none.
        engine: forwarded to every semantics instance; ``"cached"``
            routes every query through the process-wide memo cache
            (:mod:`repro.engine`), so repeated queries — also across
            sessions over structurally equal databases — are answered
            from cache; ``"resilient"`` runs every query under the
            session budget with retry/fallback degradation
            (:mod:`repro.engine.resilient`); ``"planned"`` routes each
            query through the fragment planner
            (:mod:`repro.analysis`), which dispatches Horn and
            head-cycle-free databases to cheaper sound procedures and
            records the chosen :class:`~repro.analysis.planner.QueryPlan`
            on the answer — with the certifier's envelope *tightened*
            to the fragment's class.
        budget: resource limits for ``engine="resilient"`` sessions
            (wall-clock ms, SAT calls, nodes); rejected for other
            engines, where nothing would enforce it.
        certificates: attach counter-model certificates to negative
            cautious answers (costs one extra witness search).
        certifier: the complexity certifier scoring every query against
            its Table 1/Table 2 cell (pass a strict
            :class:`~repro.obs.certify.Certifier` to raise on violation,
            or ``None`` to disable certification).  Defaults to the
            process-wide non-strict
            :data:`~repro.obs.certify.DEFAULT_CERTIFIER`, which records
            violations as span events and metrics without raising.
    """

    def __init__(
        self,
        db: DisjunctiveDatabase,
        default_semantics: str = "egcwa",
        engine: str = "oracle",
        budget: Optional[Budget] = None,
        certificates: bool = True,
        certifier: Optional[Certifier] = DEFAULT_CERTIFIER,
    ):
        if budget is not None and engine != "resilient":
            raise ReproError(
                "budget= requires engine='resilient' "
                f"(got engine={engine!r})"
            )
        self.db = db
        self.default_semantics = resolve_name(default_semantics)
        self.engine = engine
        self.budget = budget
        self.certificates = certificates
        self.certifier = certifier
        self._semantics_cache: Dict[str, Semantics] = {}
        self.total_sat_calls = 0
        self.queries_answered = 0
        self.certificates_checked = 0
        self.certificate_violations = 0
        self.solver_stat_totals: Dict[str, int] = {}
        self.plan_procedure_counts: Dict[str, int] = {}

    @staticmethod
    def _solver_delta(
        before: Dict[str, int], after: Dict[str, int]
    ) -> Dict[str, int]:
        """Per-query pooled-solver spend: ``after - before``, clamped at
        zero (a solver GC'd mid-query can make a raw counter regress)."""
        return {
            name: max(0, value - before.get(name, 0))
            for name, value in after.items()
        }

    def _note_solver_delta(self, delta: Dict[str, int]) -> None:
        for name, value in delta.items():
            self.solver_stat_totals[name] = (
                self.solver_stat_totals.get(name, 0) + value
            )

    def _note_plan(
        self, span, plan, window: OracleObservation
    ) -> None:
        """Record a planned query's predicted-vs-actual on the span, the
        process metrics and the session's per-procedure tally."""
        if plan is None:
            return
        span.set_attributes(
            plan=plan.procedure,
            predicted_np_calls=plan.predicted_np_calls,
            actual_np_calls=window.np_calls,
            predicted_sigma2=plan.predicted_sigma2,
            actual_sigma2=window.sigma2_dispatches,
            predicted_nodes=plan.predicted_nodes,
            actual_nodes=window.nodes,
        )
        record_plan_outcome(plan, window)
        self.plan_procedure_counts[plan.procedure] = (
            self.plan_procedure_counts.get(plan.procedure, 0) + 1
        )

    # ------------------------------------------------------------------
    def _semantics(self, name: Optional[str]) -> Semantics:
        key = resolve_name(name or self.default_semantics)
        if key not in self._semantics_cache:
            kwargs: Dict = {"engine": self.engine}
            if self.budget is not None:
                kwargs["budget"] = self.budget
            self._semantics_cache[key] = get_semantics(key, **kwargs)
        return self._semantics_cache[key]

    def _parse(self, query: Union[str, Formula]) -> Formula:
        if isinstance(query, str):
            return parse_formula(query)
        return query

    def _certify(
        self,
        engine: Semantics,
        method: str,
        window: OracleObservation,
        span,
        plan=None,
    ) -> Optional[ComplexityCertificate]:
        """Score one query observation against its Table 1/2 cell — or,
        when the fragment planner took a fast path, against the
        *tightened* fragment envelope (a Horn query that issued even one
        NP call is a violation).

        Returns ``None`` when certification is disabled or the entry
        point has no table cell; a strict certifier raises
        :class:`~repro.obs.certify.CertificationError` on violation.
        """
        if self.certifier is None:
            return None
        task = TASK_FOR_METHOD.get(method)
        if task is None:
            return None
        certificate = self.certifier.check(
            engine.name, task, self.db, window, self.engine, span=span,
            plan=plan,
        )
        self.certificates_checked += 1
        if not certificate.ok:
            self.certificate_violations += 1
        return certificate

    # ------------------------------------------------------------------
    def ask(
        self,
        query: Union[str, Formula],
        semantics: Optional[str] = None,
        mode: str = "cautious",
    ) -> Answer:
        """Answer a (cautious or brave) inference query.

        Args:
            query: formula text or AST.
            semantics: semantics name (default: the session default).
            mode: ``"cautious"`` (truth in all selected models) or
                ``"brave"`` (truth in at least one).
        """
        engine = self._semantics(semantics)
        formula = self._parse(query)
        solver_before = SOLVER_POOL.core_stats()
        with _trace.active_tracer().span(
            "query.ask",
            semantics=engine.name,
            engine=self.engine,
            mode=mode,
            query=str(formula),
        ) as span:
            with observe() as window, count_sat_calls() as counter:
                if mode == "cautious":
                    verdict = engine.infers(self.db, formula)
                elif mode == "brave":
                    verdict = engine.infers_brave(self.db, formula)
                else:
                    raise ValueError(f"unknown mode {mode!r}")
            plan = getattr(engine, "last_plan", None)
            complexity = (
                self._certify(engine, "infers", window, span, plan=plan)
                if mode == "cautious"
                else None
            )
            span.set_attributes(verdict=verdict, sat_calls=counter.calls)
            self._note_plan(span, plan, window)
        solver_delta = self._solver_delta(
            solver_before, SOLVER_POOL.core_stats()
        )
        certificate = None
        if (
            mode == "cautious"
            and not verdict
            and self.certificates
            and self.engine in ("oracle", "cached", "resilient")
        ):
            # The witness search stays OUTSIDE the certified observation
            # window: it is explanatory extra work, not part of the
            # decision procedure the table cell bounds.
            try:
                certificate = explain_non_inference(
                    self.db, formula, engine.name
                )
            except Exception:
                certificate = None  # engines without a certificate path
        self.total_sat_calls += counter.calls
        self.queries_answered += 1
        self._note_solver_delta(solver_delta)
        return Answer(
            verdict=verdict,
            semantics=engine.name,
            query=formula,
            sat_calls=counter.calls,
            certificate=certificate,
            solver_stats=solver_delta,
            observation=window,
            complexity=complexity,
            plan=plan,
        )

    def ask_literal(
        self,
        literal: Union[str, Literal],
        semantics: Optional[str] = None,
    ) -> Answer:
        """Literal inference (the paper's first column)."""
        engine = self._semantics(semantics)
        if isinstance(literal, str):
            literal = Literal.parse(literal)
        solver_before = SOLVER_POOL.core_stats()
        with _trace.active_tracer().span(
            "query.ask_literal",
            semantics=engine.name,
            engine=self.engine,
            literal=str(literal),
        ) as span:
            with observe() as window, count_sat_calls() as counter:
                verdict = engine.infers_literal(self.db, literal)
            plan = getattr(engine, "last_plan", None)
            complexity = self._certify(
                engine, "infers_literal", window, span, plan=plan
            )
            span.set_attributes(verdict=verdict, sat_calls=counter.calls)
            self._note_plan(span, plan, window)
        solver_delta = self._solver_delta(
            solver_before, SOLVER_POOL.core_stats()
        )
        self.total_sat_calls += counter.calls
        self.queries_answered += 1
        self._note_solver_delta(solver_delta)
        from .semantics.base import literal_formula

        return Answer(
            verdict=verdict,
            semantics=engine.name,
            query=literal_formula(literal),
            sat_calls=counter.calls,
            solver_stats=solver_delta,
            observation=window,
            complexity=complexity,
            plan=plan,
        )

    def models(self, semantics: Optional[str] = None) -> FrozenSet:
        """The selected model set (may be exponential)."""
        return self._semantics(semantics).model_set(self.db)

    def has_model(self, semantics: Optional[str] = None) -> bool:
        """Model existence (the paper's third column)."""
        engine = self._semantics(semantics)
        with _trace.active_tracer().span(
            "query.has_model",
            semantics=engine.name,
            engine=self.engine,
        ) as span:
            with observe() as window:
                verdict = engine.has_model(self.db)
            plan = getattr(engine, "last_plan", None)
            self._certify(engine, "has_model", window, span, plan=plan)
            span.set_attribute("verdict", verdict)
            self._note_plan(span, plan, window)
        return verdict

    def extended(self, clauses) -> "DatabaseSession":
        """A new session over the database extended with ``clauses``
        (sessions are immutable, like their databases)."""
        return DatabaseSession(
            self.db.with_clauses(clauses),
            default_semantics=self.default_semantics,
            engine=self.engine,
            budget=self.budget,
            certificates=self.certificates,
        )

    def stats(self) -> Dict[str, int]:
        """Aggregate session accounting, merged with the process-wide
        runtime counters (budgets tripped, faults injected, retries,
        fallbacks, timeouts — see
        :data:`repro.runtime.budget.RUNTIME_STATS`) and the solver-pool
        counters.  CDCL search work (``solver_*`` keys) is the *sum of
        this session's per-query deltas*, not the pool's lifetime
        totals — other sessions sharing the pool don't leak in."""
        stats = {
            "queries_answered": self.queries_answered,
            "total_sat_calls": self.total_sat_calls,
            "semantics_cached": len(self._semantics_cache),
            "certificates_checked": self.certificates_checked,
            "certificate_violations": self.certificate_violations,
        }
        stats.update(RUNTIME_STATS.snapshot())
        stats.update(solver_pool_stats())
        stats.update(
            {
                f"plan_{procedure.replace('-', '_')}": count
                for procedure, count in sorted(
                    self.plan_procedure_counts.items()
                )
            }
        )
        stats.update(
            {
                f"solver_{name}": value
                for name, value in sorted(self.solver_stat_totals.items())
            }
        )
        return stats

    def cache_stats(self) -> Dict:
        """Statistics of the process-wide result cache backing
        ``engine="cached"`` sessions (see
        :meth:`repro.engine.cache.EngineCache.stats`)."""
        from .engine.cache import cache_stats

        return cache_stats()
