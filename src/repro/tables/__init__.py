"""Reproduction of the paper's Tables 1 and 2 (claims + evidence)."""

from .evidence import CellEvidence, measure_cell
from .report import claims_grid, render_both_tables, render_table
from .scaling import ScalingRow, measure_size, render_rows, run_scaling_study

__all__ = [
    "CellEvidence",
    "measure_cell",
    "claims_grid",
    "render_both_tables",
    "render_table",
    "ScalingRow",
    "measure_size",
    "render_rows",
    "run_scaling_study",
]
