"""Measured evidence for every cell of Tables 1 and 2.

For one cell (semantics row, task column, regime) the paper claims a
complexity class.  :func:`measure_cell` produces the empirical evidence
this reproduction offers for that claim:

* **agreement** — the oracle-backed decision procedure returns the same
  answers as the brute-force ground truth on a batch of random instances
  of the cell's regime;
* **oracle profile** — the NP-oracle (SAT) calls, and where applicable
  the Σ₂ᵖ-oracle calls, the procedure spent, whose growth shape is the
  executable content of the upper bound (0 calls for P/O(1) cells, O(1)
  calls for NP/coNP cells, O(log n) Σ₂ᵖ calls for the Θ cells, ...);
* **hardness** — where the paper proves a lower bound, the corresponding
  reduction of :mod:`repro.complexity.reductions` validated on random
  source instances against brute force.

The same functions back the pytest-benchmark targets in ``benchmarks/``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..complexity.classes import Regime, Task
from ..complexity.machines import theta_inference
from ..complexity.oracles import count_sat_calls
from ..complexity.reductions import (
    cnf_to_database,
    qbf_to_dsm_existence,
    qbf_to_minimal_entailment,
    qbf_to_pdsm_existence,
    qbf_to_perf_existence,
    unsat_to_ddr_formula,
    unsat_to_ddr_literal,
    unsat_to_uminsat,
    has_unique_minimal_model,
)
from ..complexity.verify import ReductionReport, check_reduction
from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..models.enumeration import minimal_models_brute
from ..qbf.solver import solve_qbf2_brute
from ..sat.solver import SatSolver, is_satisfiable
from ..semantics import get_semantics
from ..workloads import (
    random_cnf,
    random_deductive_db,
    random_normal_db,
    random_positive_db,
    random_qbf2,
    random_query_formula,
    random_stratified_db,
)

#: Default instance sizes (kept small enough for the brute ground truth).
DEFAULT_ATOMS = 5
DEFAULT_CLAUSES = 6
DEFAULT_INSTANCES = 6


@dataclass
class CellEvidence:
    """What we measured for one table cell."""

    row: str
    task: Task
    regime: Regime
    agreement: Optional[bool] = None
    instances: int = 0
    max_sat_calls: int = 0
    max_sigma2_calls: Optional[int] = None
    sigma2_bound: Optional[int] = None
    hardness: Optional[ReductionReport] = None
    note: str = ""

    @property
    def ok(self) -> bool:
        if self.agreement is False:
            return False
        if self.hardness is not None and not self.hardness.ok:
            return False
        if (
            self.max_sigma2_calls is not None
            and self.sigma2_bound is not None
            and self.max_sigma2_calls > self.sigma2_bound
        ):
            return False
        return True

    def render(self) -> str:
        parts: List[str] = []
        if self.agreement is not None:
            parts.append(
                f"agrees with brute force on {self.instances} instances"
                if self.agreement
                else "DISAGREES with brute force"
            )
        if self.max_sigma2_calls is not None:
            parts.append(
                f"Σ2-calls <= {self.max_sigma2_calls}"
                + (
                    f" (bound {self.sigma2_bound})"
                    if self.sigma2_bound is not None
                    else ""
                )
            )
        parts.append(f"SAT-calls <= {self.max_sat_calls}")
        if self.hardness is not None:
            parts.append(f"hardness: {self.hardness.render()}")
        if self.note:
            parts.append(self.note)
        return "; ".join(parts)


def _instances_for(
    row: str, regime: Regime, count: int, atoms: int, clauses: int
) -> List[DisjunctiveDatabase]:
    """Random databases matching the regime the cell quantifies over."""
    dbs: List[DisjunctiveDatabase] = []
    for seed in range(count):
        if regime is Regime.POSITIVE:
            dbs.append(
                random_positive_db(atoms, clauses, seed=seed)
            )
        elif row == "icwa":
            dbs.append(
                random_stratified_db(atoms, clauses, seed=seed)
            )
        elif row in ("perf",):
            # PERF is defined without integrity clauses; its Table 2 row
            # concerns databases with (stratified or not) negation.
            dbs.append(
                random_normal_db(
                    atoms, clauses, neg_fraction=0.4, ic_fraction=0.0,
                    seed=seed,
                )
            )
        elif row in ("dsm", "pdsm"):
            dbs.append(
                random_normal_db(
                    atoms, clauses, neg_fraction=0.4, ic_fraction=0.15,
                    seed=seed,
                )
            )
        else:
            dbs.append(random_deductive_db(atoms, clauses, seed=seed))
    return dbs


def _query_for(db: DisjunctiveDatabase, task: Task, seed: int):
    if task is Task.LITERAL:
        atom = sorted(db.vocabulary)[seed % len(db.vocabulary)]
        return Literal.neg(atom)
    return random_query_formula(sorted(db.vocabulary), depth=2, seed=seed)


def _run_cell_agreement(
    row: str, task: Task, regime: Regime, count: int, atoms: int, clauses: int
) -> Tuple[bool, int, int]:
    """Oracle-vs-brute agreement plus the max SAT-call profile."""
    oracle_semantics = get_semantics(row)
    brute_semantics = get_semantics(row, engine="brute")
    agree = True
    max_calls = 0
    used = 0
    for seed, db in enumerate(
        _instances_for(row, regime, count, atoms, clauses)
    ):
        try:
            oracle_semantics.validate(db)
        except Exception:
            continue  # regime mismatch for this random draw
        used += 1
        if task is Task.EXISTS_MODEL:
            with count_sat_calls() as counter:
                fast = oracle_semantics.has_model(db)
            slow = brute_semantics.has_model(db)
        elif task is Task.LITERAL:
            literal = _query_for(db, task, seed)
            with count_sat_calls() as counter:
                fast = oracle_semantics.infers_literal(db, literal)
            slow = brute_semantics.infers_literal(db, literal)
        else:
            formula = _query_for(db, task, seed)
            with count_sat_calls() as counter:
                fast = oracle_semantics.infers(db, formula)
            slow = brute_semantics.infers(db, formula)
        max_calls = max(max_calls, counter.calls)
        if fast != slow:
            agree = False
    return agree, max_calls, used


def _theta_evidence(
    row: str, regime: Regime, count: int, atoms: int, clauses: int
) -> Tuple[bool, int, int, int]:
    """Θ-cell evidence: theta_inference agrees with brute GCWA/CCWA and
    stays within the logarithmic Σ₂ᵖ-call bound."""
    brute = get_semantics(row, engine="brute")
    agree = True
    max_sigma2 = 0
    max_sat = 0
    bound = 0
    for seed, db in enumerate(
        _instances_for(row, regime, count, atoms, clauses)
    ):
        formula = random_query_formula(sorted(db.vocabulary), depth=2, seed=seed)
        with count_sat_calls() as counter:
            result = theta_inference(db, formula)
        expected = brute.infers(db, formula)
        if result.inferred != expected:
            agree = False
        max_sigma2 = max(max_sigma2, result.sigma2_calls)
        bound = max(bound, result.call_bound)
        max_sat = max(max_sat, counter.calls)
    return agree, max_sigma2, bound, max_sat


# ----------------------------------------------------------------------
# Hardness evidence per cell (where the paper proves a lower bound)
# ----------------------------------------------------------------------
def _qbf_instances(count: int):
    """Random 2QBFs plus two fixed valid ones, so both polarities of
    every reduction are exercised."""
    from ..qbf.formula import dnf_formula, exists_forall

    fixed = [
        # ∃x ∀y . (x ∧ y) ∨ (x ∧ ¬y) — valid (pick x true).
        exists_forall(
            ["x1"], ["y1"], dnf_formula([(("x1", "y1"), ()),
                                         (("x1",), ("y1",))])
        ),
        # ∃x ∀y . (x ∧ ¬y) — invalid (y true refutes every x).
        exists_forall(
            ["x1"], ["y1"], dnf_formula([(("x1",), ("y1",))])
        ),
    ]
    return fixed + [
        random_qbf2(2, 2, num_terms=3, width=3, seed=seed)
        for seed in range(count)
    ]


def _cnf_instances(count: int):
    """Random CNFs plus one fixed unsatisfiable one, so the UNSAT-based
    reductions see a yes-instance."""
    fixed_unsat = [
        frozenset({Literal.pos("x1")}),
        frozenset({Literal.neg("x1")}),
    ]
    return [fixed_unsat] + [random_cnf(4, 7, seed=seed) for seed in range(count)]


def _pi2_hardness_report(count: int) -> ReductionReport:
    """QBF2,∃ → minimal-model entailment, validated by brute force."""
    return check_reduction(
        "QBF(∃∀) → MM(T) ⊭ ¬w",
        _qbf_instances(count),
        lambda q: solve_qbf2_brute(q).valid,
        lambda q: any(
            "w" in m
            for m in minimal_models_brute(qbf_to_minimal_entailment(q).db)
        ),
        describe=str,
    )


def _dsm_existence_hardness(count: int) -> ReductionReport:
    return check_reduction(
        "QBF(∃∀) → DSM model existence",
        _qbf_instances(count),
        lambda q: solve_qbf2_brute(q).valid,
        lambda q: get_semantics("dsm", engine="brute").has_model(
            qbf_to_dsm_existence(q).db
        ),
        describe=str,
    )


def _pdsm_existence_hardness(count: int) -> ReductionReport:
    return check_reduction(
        "QBF(∃∀) → PDSM model existence",
        _qbf_instances(count),
        lambda q: solve_qbf2_brute(q).valid,
        lambda q: get_semantics("pdsm", engine="brute").has_model(
            qbf_to_pdsm_existence(q).db
        ),
        describe=str,
    )


def _perf_existence_hardness(count: int) -> ReductionReport:
    return check_reduction(
        "QBF(∃∀) → PERF model existence",
        _qbf_instances(count),
        lambda q: solve_qbf2_brute(q).valid,
        lambda q: get_semantics("perf", engine="brute").has_model(
            qbf_to_perf_existence(q).db
        ),
        describe=str,
    )


def _sat_existence_hardness(count: int) -> ReductionReport:
    return check_reduction(
        "SAT → EGCWA model existence (with ICs)",
        _cnf_instances(count),
        is_satisfiable,
        lambda cnf: get_semantics("egcwa").has_model(cnf_to_database(cnf)),
        describe=lambda cnf: f"cnf({len(cnf)} clauses)",
    )


def _ddr_formula_hardness(count: int) -> ReductionReport:
    def decide(cnf) -> bool:
        instance = unsat_to_ddr_formula(cnf)
        return get_semantics("ddr").infers(instance.db, instance.formula)

    return check_reduction(
        "UNSAT → DDR formula inference (no ICs)",
        _cnf_instances(count),
        lambda cnf: not is_satisfiable(cnf),
        decide,
        describe=lambda cnf: f"cnf({len(cnf)} clauses)",
    )


def _pws_formula_hardness(count: int) -> ReductionReport:
    def decide(cnf) -> bool:
        instance = unsat_to_ddr_formula(cnf)
        return get_semantics("pws").infers(instance.db, instance.formula)

    return check_reduction(
        "UNSAT → PWS formula inference (no ICs)",
        _cnf_instances(count),
        lambda cnf: not is_satisfiable(cnf),
        decide,
        describe=lambda cnf: f"cnf({len(cnf)} clauses)",
    )


def _ddr_literal_hardness(count: int, semantics: str) -> ReductionReport:
    def decide(cnf) -> bool:
        instance = unsat_to_ddr_literal(cnf)
        return get_semantics(semantics).infers_literal(
            instance.db, instance.literal
        )

    return check_reduction(
        f"UNSAT → {semantics.upper()} literal inference (with ICs)",
        _cnf_instances(count),
        lambda cnf: not is_satisfiable(cnf),
        decide,
        describe=lambda cnf: f"cnf({len(cnf)} clauses)",
    )


def _uminsat_hardness(count: int) -> ReductionReport:
    return check_reduction(
        "UNSAT → UMINSAT (Prop. 5.4)",
        _cnf_instances(count),
        lambda cnf: not is_satisfiable(cnf),
        lambda cnf: has_unique_minimal_model(unsat_to_uminsat(cnf)),
        describe=lambda cnf: f"cnf({len(cnf)} clauses)",
    )


_HARDNESS: Dict[Tuple[str, Task, Regime], Callable[[int], ReductionReport]] = {
    ("gcwa", Task.LITERAL, Regime.POSITIVE): _pi2_hardness_report,
    ("egcwa", Task.LITERAL, Regime.POSITIVE): _pi2_hardness_report,
    ("ecwa", Task.LITERAL, Regime.POSITIVE): _pi2_hardness_report,
    ("ccwa", Task.LITERAL, Regime.POSITIVE): _pi2_hardness_report,
    ("icwa", Task.LITERAL, Regime.POSITIVE): _pi2_hardness_report,
    ("perf", Task.LITERAL, Regime.POSITIVE): _pi2_hardness_report,
    ("dsm", Task.LITERAL, Regime.POSITIVE): _pi2_hardness_report,
    ("pdsm", Task.LITERAL, Regime.POSITIVE): _pi2_hardness_report,
    ("ddr", Task.FORMULA, Regime.POSITIVE): _ddr_formula_hardness,
    ("pws", Task.FORMULA, Regime.POSITIVE): _pws_formula_hardness,
    ("ddr", Task.LITERAL, Regime.WITH_ICS): lambda n: _ddr_literal_hardness(
        n, "ddr"
    ),
    ("pws", Task.LITERAL, Regime.WITH_ICS): lambda n: _ddr_literal_hardness(
        n, "pws"
    ),
    ("egcwa", Task.EXISTS_MODEL, Regime.WITH_ICS): _sat_existence_hardness,
    ("dsm", Task.EXISTS_MODEL, Regime.WITH_ICS): _dsm_existence_hardness,
    ("pdsm", Task.EXISTS_MODEL, Regime.WITH_ICS): _pdsm_existence_hardness,
    ("perf", Task.EXISTS_MODEL, Regime.WITH_ICS): _perf_existence_hardness,
}


def measure_cell(
    row: str,
    task: Task,
    regime: Regime,
    instances: int = DEFAULT_INSTANCES,
    atoms: int = DEFAULT_ATOMS,
    clauses: int = DEFAULT_CLAUSES,
    with_hardness: bool = True,
    hardness_instances: int = 4,
) -> CellEvidence:
    """Produce the evidence record for one table cell."""
    evidence = CellEvidence(row=row, task=task, regime=regime)
    theta_rows = {"gcwa", "ccwa"}
    if task is Task.FORMULA and row in theta_rows:
        agree, sigma2, bound, sat = _theta_evidence(
            row, regime, instances, atoms, clauses
        )
        evidence.agreement = agree
        evidence.instances = instances
        evidence.max_sigma2_calls = sigma2
        evidence.sigma2_bound = bound
        evidence.max_sat_calls = sat
        evidence.note = "theta_inference (O(log n) Σ2 calls)"
    else:
        agree, max_calls, used = _run_cell_agreement(
            row, task, regime, instances, atoms, clauses
        )
        evidence.agreement = agree
        evidence.instances = used
        evidence.max_sat_calls = max_calls
    if with_hardness:
        hardness = _HARDNESS.get((row, task, regime))
        if hardness is not None:
            evidence.hardness = hardness(hardness_instances)
    return evidence
