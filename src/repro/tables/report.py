"""Rendering Tables 1 and 2: the paper's claims next to our evidence.

:func:`render_table` prints the same rows the paper reports (semantics ×
{literal inference, formula inference, model existence}) with each cell's
claimed complexity class, and optionally a second evidence block with the
measurements of :mod:`repro.tables.evidence`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..complexity.classes import (
    ROW_LABELS,
    ROW_ORDER,
    Claim,
    Regime,
    Task,
    table,
)
from .evidence import CellEvidence, measure_cell

_TASKS = (Task.LITERAL, Task.FORMULA, Task.EXISTS_MODEL)


def _format_grid(rows: List[List[str]]) -> str:
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(rows[0]))
    ]
    lines = []
    for index, row in enumerate(rows):
        line = "  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        ).rstrip()
        lines.append(line)
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def claims_grid(regime: Regime) -> str:
    """The claims table alone, in the paper's layout."""
    claims = table(regime)
    rows: List[List[str]] = [
        ["Semantics", "Inference of literal", "Inference of formula",
         "Exists model"]
    ]
    for row_key in ROW_ORDER:
        cells = [ROW_LABELS[row_key]]
        for task in _TASKS:
            claim = claims.get((row_key, task))
            cells.append(claim.render() if claim else "")
        rows.append(cells)
    return _format_grid(rows)


def render_table(
    regime: Regime,
    with_evidence: bool = False,
    instances: int = 4,
    atoms: int = 5,
    clauses: int = 6,
    hardness_instances: int = 3,
) -> str:
    """The full table; with ``with_evidence`` each cell is re-measured."""
    title = (
        "Table 1: positive propositional DDBs "
        "(no integrity clauses, no negation)"
        if regime is Regime.POSITIVE
        else "Table 2: propositional DDBs (with integrity clauses)"
    )
    output = [title, "=" * len(title), "", claims_grid(regime)]
    if with_evidence:
        output += ["", "Measured evidence", "-" * 17]
        for row_key in ROW_ORDER:
            for task in _TASKS:
                if (row_key, task) not in table(regime):
                    continue
                evidence = measure_cell(
                    row_key,
                    task,
                    regime,
                    instances=instances,
                    atoms=atoms,
                    clauses=clauses,
                    hardness_instances=hardness_instances,
                )
                status = "ok " if evidence.ok else "FAIL"
                output.append(
                    f"[{status}] {ROW_LABELS[row_key]:14s} {task.value:21s}"
                    f" -> {evidence.render()}"
                )
    return "\n".join(output)


def render_both_tables(with_evidence: bool = False, **kwargs) -> str:
    """Tables 1 and 2 back to back (the paper's presentation)."""
    return (
        render_table(Regime.POSITIVE, with_evidence=with_evidence, **kwargs)
        + "\n\n"
        + render_table(Regime.WITH_ICS, with_evidence=with_evidence, **kwargs)
    )
