"""Programmatic scaling study: the tables' separation as data.

Used by ``examples/scaling_study.py`` and the benchmark suite; returns
plain rows so callers can render, plot, or assert on them.  One cell per
complexity class, swept over the exclusive-pairs family (``2^n`` minimal
models at size ``n``):

* P cell — DDR negative-literal inference (expected: 0 oracle calls);
* coNP cell — DDR formula inference (expected: exactly 1 call);
* Π₂ᵖ cell — EGCWA formula inference (calls grow with the model space);
* Θ cell — GCWA formula inference by the binary-search machine
  (Σ₂ᵖ calls ≤ ``ceil(log2(|P|+1)) + 1``) vs the naive linear machine
  (= ``|P|`` queries).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List

from ..complexity.machines import linear_inference, theta_inference
from ..complexity.oracles import count_sat_calls
from ..logic.parser import parse_formula
from ..semantics import get_semantics
from ..workloads import exclusive_pairs


@dataclass
class ScalingRow:
    """Measurements for one instance size."""

    size: int
    atoms: int
    p_ms: float
    p_calls: int
    conp_ms: float
    conp_calls: int
    pi2_ms: float
    pi2_calls: int
    theta_ms: float
    theta_sigma2: int
    theta_bound: int
    naive_sigma2: int

    def shape_ok(self) -> bool:
        """Whether the oracle profile matches the claimed classes."""
        return (
            self.p_calls == 0
            and self.conp_calls == 1
            and self.theta_sigma2 <= self.theta_bound
            and self.naive_sigma2 == 2 * self.size
        )


def _timed(callable_: Callable[[], object]) -> "tuple[float, int]":
    with count_sat_calls() as counter:
        start = time.perf_counter()
        callable_()
        elapsed = (time.perf_counter() - start) * 1000.0
    return elapsed, counter.calls


def measure_size(size: int) -> ScalingRow:
    """All four cells at one size of the exclusive-pairs family."""
    db = exclusive_pairs(size)
    ddr = get_semantics("ddr")
    egcwa = get_semantics("egcwa")
    query = parse_formula("x1 | y1")
    exclusive = parse_formula("~x1 | ~y1")

    p_ms, p_calls = _timed(lambda: ddr.infers_literal(db, "not x1"))
    conp_ms, conp_calls = _timed(lambda: ddr.infers(db, query))
    pi2_ms, pi2_calls = _timed(lambda: egcwa.infers(db, exclusive))

    holder: dict = {}

    def run_theta() -> None:
        holder["theta"] = theta_inference(db, query)

    theta_ms, _ = _timed(run_theta)
    theta_result = holder["theta"]
    naive = linear_inference(db, query)

    return ScalingRow(
        size=size,
        atoms=len(db.vocabulary),
        p_ms=p_ms,
        p_calls=p_calls,
        conp_ms=conp_ms,
        conp_calls=conp_calls,
        pi2_ms=pi2_ms,
        pi2_calls=pi2_calls,
        theta_ms=theta_ms,
        theta_sigma2=theta_result.sigma2_calls,
        theta_bound=theta_result.call_bound,
        naive_sigma2=naive.sigma2_calls,
    )


def run_scaling_study(
    min_size: int = 2, max_size: int = 6
) -> List[ScalingRow]:
    """Measure every size in ``[min_size, max_size]``."""
    return [measure_size(size) for size in range(min_size, max_size + 1)]


def render_rows(rows: List[ScalingRow]) -> str:
    """The fixed-width table used by the example script."""
    header = (
        f"{'n':>3} {'|V|':>4} "
        f"{'P-cell ms':>10} {'calls':>6} "
        f"{'coNP ms':>9} {'calls':>6} "
        f"{'Pi2 ms':>8} {'calls':>6} "
        f"{'Theta ms':>9} {'Σ2':>4} {'naive Σ2':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.size:>3} {row.atoms:>4} "
            f"{row.p_ms:>10.2f} {row.p_calls:>6} "
            f"{row.conp_ms:>9.2f} {row.conp_calls:>6} "
            f"{row.pi2_ms:>8.2f} {row.pi2_calls:>6} "
            f"{row.theta_ms:>9.2f} {row.theta_sigma2:>4} "
            f"{row.naive_sigma2:>9}"
        )
    return "\n".join(lines)
