"""Workload generators: random regimes and structured scaling families."""

from .families import (
    chain,
    disjunctive_chain,
    exclusive_pairs,
    exclusive_pairs_strict,
    pigeonhole_cnf_db,
    stratified_tower,
    win_move_cycle,
    win_move_path,
)
from .random_db import (
    random_deductive_db,
    random_horn_db,
    random_normal_db,
    random_positive_db,
    random_stratified_db,
)
from .suites import (
    ALL_SUITES,
    Suite,
    normal_suite,
    stratified_suite,
    suite_digests,
    table1_suite,
    table2_suite,
)
from .random_formulas import (
    random_cnf,
    random_dnf_terms,
    random_qbf2,
    random_query_formula,
)

__all__ = [
    "chain",
    "disjunctive_chain",
    "exclusive_pairs",
    "exclusive_pairs_strict",
    "pigeonhole_cnf_db",
    "stratified_tower",
    "win_move_cycle",
    "win_move_path",
    "random_deductive_db",
    "random_horn_db",
    "random_normal_db",
    "random_positive_db",
    "random_stratified_db",
    "ALL_SUITES",
    "Suite",
    "normal_suite",
    "stratified_suite",
    "suite_digests",
    "table1_suite",
    "table2_suite",
    "random_cnf",
    "random_dnf_terms",
    "random_qbf2",
    "random_query_formula",
]
