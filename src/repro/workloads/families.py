"""Structured scaling families.

Deterministic parameterized databases with known analytic structure, used
by the benchmarks to make the tractable-vs-intractable separation of the
tables visible as growth rates, and by the tests as instances with
predictable answers.
"""

from __future__ import annotations

from typing import List

from ..logic.clause import Clause
from ..logic.database import DisjunctiveDatabase


def exclusive_pairs(n: int) -> DisjunctiveDatabase:
    """``{x_i | y_i : i <= n}`` — ``2^n`` minimal models (each picks one
    of every pair), all atoms possibly true; GCWA/DDR negate nothing."""
    clauses = [Clause.fact(f"x{i}", f"y{i}") for i in range(1, n + 1)]
    return DisjunctiveDatabase(clauses)


def exclusive_pairs_strict(n: int) -> DisjunctiveDatabase:
    """Exclusive pairs with integrity clauses forbidding both atoms —
    models are exactly the ``2^n`` proper choices (Table 2 regime)."""
    clauses: List[Clause] = []
    for i in range(1, n + 1):
        clauses.append(Clause.fact(f"x{i}", f"y{i}"))
        clauses.append(Clause.integrity([f"x{i}", f"y{i}"]))
    return DisjunctiveDatabase(clauses)


def chain(n: int) -> DisjunctiveDatabase:
    """A definite chain ``a1. a2 :- a1. ... an :- a(n-1)`` — one minimal
    model containing everything; every semantics is decisive and fast."""
    clauses = [Clause.fact("a1")]
    clauses += [
        Clause.rule([f"a{i}"], [f"a{i-1}"]) for i in range(2, n + 1)
    ]
    return DisjunctiveDatabase(clauses)


def disjunctive_chain(n: int) -> DisjunctiveDatabase:
    """``a1 | b1.  a(i) | b(i) :- a(i-1).  a(i) | b(i) :- b(i-1)`` —
    exponentially many minimal models along a chain."""
    clauses = [Clause.fact("a1", "b1")]
    for i in range(2, n + 1):
        clauses.append(Clause.rule([f"a{i}", f"b{i}"], [f"a{i-1}"]))
        clauses.append(Clause.rule([f"a{i}", f"b{i}"], [f"b{i-1}"]))
    return DisjunctiveDatabase(clauses)


def win_move_cycle(n: int) -> DisjunctiveDatabase:
    """The classic game database ``win(i) :- not win(i+1 mod n)`` on an
    ``n``-cycle: stratified iff never (n >= 1); stable models exist iff
    ``n`` is even; the paper's DNDB regime."""
    clauses = [
        Clause.rule([f"win{i}"], [], [f"win{(i % n) + 1}"])
        for i in range(1, n + 1)
    ]
    return DisjunctiveDatabase(clauses)


def win_move_path(n: int) -> DisjunctiveDatabase:
    """``win(i) :- not win(i+1)`` on a path — stratified, one perfect
    model with alternating wins from the end."""
    clauses = [
        Clause.rule([f"win{i}"], [], [f"win{i+1}"]) for i in range(1, n)
    ]
    return DisjunctiveDatabase(clauses, [f"win{i}" for i in range(1, n + 1)])


def stratified_tower(levels: int, width: int = 2) -> DisjunctiveDatabase:
    """``levels`` strata of ``width`` disjunctive choices, each level
    conditioned on the negation of the previous level's first atom —
    exercises ICWA/PERF with nontrivial priorities."""
    clauses: List[Clause] = []
    for level in range(1, levels + 1):
        heads = [f"l{level}_{j}" for j in range(1, width + 1)]
        if level == 1:
            clauses.append(Clause.fact(*heads))
        else:
            clauses.append(
                Clause.rule(heads, [], [f"l{level-1}_1"])
            )
    return DisjunctiveDatabase(clauses)


def disjoint_components(
    copies: int, component_size: int = 3
) -> DisjunctiveDatabase:
    """``copies`` vocabulary-disjoint copies of
    :func:`disjunctive_chain`, prefixed ``c<k>_`` — the clause graph has
    exactly ``copies`` connected components, so ``MM`` factors into a
    product of per-component sweeps.  A decomposing enumerator explores
    ``copies * 2^component_size`` nodes where a monolithic one explores
    ``2^(copies * component_size)``: the asymptotic-win family for
    connected-component decomposition."""
    from ..logic.transform import rename_atoms

    clauses: List[Clause] = []
    base = disjunctive_chain(component_size)
    for k in range(1, copies + 1):
        copy = rename_atoms(base, lambda a, k=k: f"c{k}_{a}")
        clauses.extend(sorted(copy.clauses))
    return DisjunctiveDatabase(clauses)


def pigeonhole_cnf_db(pigeons: int) -> DisjunctiveDatabase:
    """The pigeonhole principle PHP(p, p-1) as a database with integrity
    clauses — unsatisfiable, hard for resolution-style reasoning; used to
    stress the NP-complete model-existence cells."""
    holes = pigeons - 1
    clauses: List[Clause] = []
    for p in range(1, pigeons + 1):
        clauses.append(
            Clause.fact(*[f"in_{p}_{h}" for h in range(1, holes + 1)])
        )
    for h in range(1, holes + 1):
        for p1 in range(1, pigeons + 1):
            for p2 in range(p1 + 1, pigeons + 1):
                clauses.append(
                    Clause.integrity([f"in_{p1}_{h}", f"in_{p2}_{h}"])
                )
    return DisjunctiveDatabase(clauses)
