"""Random database generators.

The paper's tables quantify over syntactic regimes ("positive
propositional DDBs", "DDBs with integrity clauses", DSDBs, DNDBs); these
generators realize each regime as a parameterized random family so that
the decision procedures can be exercised and profiled.  All generators
are deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

#: Generators accept either an integer seed or a caller-owned
#: ``random.Random`` instance.
Seed = Union[int, random.Random]

from ..logic.clause import Clause
from ..logic.database import DisjunctiveDatabase
from ..semantics.stratification import is_stratified


def _atoms(count: int, prefix: str = "v") -> List[str]:
    return [f"{prefix}{i}" for i in range(1, count + 1)]


def _rng(seed: Seed) -> random.Random:
    """A generator RNG: an explicit ``random.Random`` is used as-is (and
    advanced by the generator), an integer seeds a fresh one.  Either way
    the sampled clauses are a pure function of the RNG state, so equal
    seeds produce byte-identical databases across runs and platforms."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_positive_db(
    num_atoms: int,
    num_clauses: int,
    max_head: int = 3,
    max_body: int = 2,
    seed: Seed = 0,
    fact_fraction: float = 0.3,
) -> DisjunctiveDatabase:
    """A random *positive* DDB (Table 1 regime: no ICs, no negation).

    Args:
        num_atoms: vocabulary size.
        num_clauses: number of clauses.
        max_head: maximum head width (heads are nonempty).
        max_body: maximum positive-body width.
        seed: integer seed or an explicit ``random.Random`` instance.
        fact_fraction: fraction of clauses generated with empty bodies.
    """
    rng = _rng(seed)
    atoms = _atoms(num_atoms)
    clauses: List[Clause] = []
    for _ in range(num_clauses):
        head_width = rng.randint(1, min(max_head, num_atoms))
        head = rng.sample(atoms, head_width)
        if rng.random() < fact_fraction:
            body: Sequence[str] = ()
        else:
            body_width = rng.randint(0, min(max_body, num_atoms))
            body = [a for a in rng.sample(atoms, body_width) if a not in head]
        clauses.append(Clause.rule(head, body))
    return DisjunctiveDatabase(clauses, atoms)


def random_horn_db(
    num_atoms: int,
    num_clauses: int,
    max_body: int = 2,
    seed: Seed = 0,
    fact_fraction: float = 0.3,
) -> DisjunctiveDatabase:
    """A random *Horn* DDB (single-atom heads, positive bodies, no ICs).

    The Horn cell is the fragment planner's polynomial fast path
    (:func:`repro.analysis.procedures.horn_least_model`), so the
    adversarial hunter draws base databases here both to exercise that
    dispatch directly and to feed the barely-non-Horn boundary mutators.
    """
    rng = _rng(seed)
    atoms = _atoms(num_atoms)
    clauses: List[Clause] = []
    for _ in range(num_clauses):
        head = [rng.choice(atoms)]
        if rng.random() < fact_fraction:
            body: Sequence[str] = ()
        else:
            body_width = rng.randint(0, min(max_body, num_atoms))
            body = [a for a in rng.sample(atoms, body_width) if a not in head]
        clauses.append(Clause.rule(head, body))
    return DisjunctiveDatabase(clauses, atoms)


def random_deductive_db(
    num_atoms: int,
    num_clauses: int,
    max_head: int = 3,
    max_body: int = 2,
    ic_fraction: float = 0.25,
    seed: Seed = 0,
) -> DisjunctiveDatabase:
    """A random DDDB *with integrity clauses* (Table 2 regime)."""
    rng = _rng(seed)
    atoms = _atoms(num_atoms)
    clauses: List[Clause] = []
    for _ in range(num_clauses):
        if rng.random() < ic_fraction:
            body_width = rng.randint(1, min(max_body + 1, num_atoms))
            clauses.append(Clause.integrity(rng.sample(atoms, body_width)))
            continue
        head_width = rng.randint(1, min(max_head, num_atoms))
        head = rng.sample(atoms, head_width)
        body_width = rng.randint(0, min(max_body, num_atoms))
        body = [a for a in rng.sample(atoms, body_width) if a not in head]
        clauses.append(Clause.rule(head, body))
    return DisjunctiveDatabase(clauses, atoms)


def random_stratified_db(
    num_atoms: int,
    num_clauses: int,
    num_strata: int = 3,
    max_head: int = 2,
    max_body: int = 2,
    neg_fraction: float = 0.4,
    seed: Seed = 0,
) -> DisjunctiveDatabase:
    """A random DSDB, stratified *by construction*: atoms are spread over
    ``num_strata`` layers; heads of one clause share a layer, positive
    body atoms come from the same or lower layers, negated atoms from
    strictly lower layers."""
    rng = _rng(seed)
    atoms = _atoms(num_atoms)
    layer_of = {a: rng.randrange(num_strata) for a in atoms}
    by_layer: List[List[str]] = [[] for _ in range(num_strata)]
    for a in atoms:
        by_layer[layer_of[a]].append(a)
    clauses: List[Clause] = []
    for _ in range(num_clauses):
        layer = rng.randrange(num_strata)
        pool = by_layer[layer]
        if not pool:
            continue
        head = rng.sample(pool, rng.randint(1, min(max_head, len(pool))))
        lower_or_same = [a for a in atoms if layer_of[a] <= layer]
        strictly_lower = [a for a in atoms if layer_of[a] < layer]
        body_pos: List[str] = []
        body_neg: List[str] = []
        for _ in range(rng.randint(0, max_body)):
            if strictly_lower and rng.random() < neg_fraction:
                body_neg.append(rng.choice(strictly_lower))
            elif lower_or_same:
                candidate = rng.choice(lower_or_same)
                if candidate not in head:
                    body_pos.append(candidate)
        clauses.append(Clause.rule(head, body_pos, body_neg))
    db = DisjunctiveDatabase(clauses, atoms)
    assert is_stratified(db), "generator invariant violated"
    return db


def random_normal_db(
    num_atoms: int,
    num_clauses: int,
    max_head: int = 2,
    max_body: int = 2,
    neg_fraction: float = 0.4,
    ic_fraction: float = 0.0,
    seed: Seed = 0,
) -> DisjunctiveDatabase:
    """A random DNDB: arbitrary negation (possibly unstratified), optional
    integrity clauses."""
    rng = _rng(seed)
    atoms = _atoms(num_atoms)
    clauses: List[Clause] = []
    for _ in range(num_clauses):
        make_ic = rng.random() < ic_fraction
        head: Sequence[str] = ()
        if not make_ic:
            head = rng.sample(atoms, rng.randint(1, min(max_head, num_atoms)))
        body_pos: List[str] = []
        body_neg: List[str] = []
        width = rng.randint(1 if make_ic else 0, max_body)
        for _ in range(width):
            atom = rng.choice(atoms)
            if atom in head:
                continue
            if rng.random() < neg_fraction:
                body_neg.append(atom)
            else:
                body_pos.append(atom)
        if make_ic and not body_pos and not body_neg:
            body_pos.append(rng.choice(atoms))
        clauses.append(Clause.rule(head, body_pos, body_neg))
    return DisjunctiveDatabase(clauses, atoms)
