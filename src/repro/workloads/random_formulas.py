"""Random CNFs, DNFs, 2QBFs and query formulas (seeded, deterministic)."""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..logic.atoms import Literal
from ..logic.cnf import Cnf
from ..logic.formula import Formula, Not, Var, conj, disj
from ..qbf.formula import QBF2, dnf_formula, exists_forall


def random_cnf(
    num_vars: int,
    num_clauses: int,
    width: int = 3,
    seed: int = 0,
    prefix: str = "x",
) -> Cnf:
    """A random ``width``-CNF over ``prefix1..prefixN`` as a symbolic CNF."""
    rng = random.Random(seed)
    atoms = [f"{prefix}{i}" for i in range(1, num_vars + 1)]
    cnf: Cnf = []
    for _ in range(num_clauses):
        chosen = rng.sample(atoms, min(width, num_vars))
        cnf.append(
            frozenset(
                Literal(a, rng.random() < 0.5) for a in chosen
            )
        )
    return cnf


def random_dnf_terms(
    atoms: Sequence[str], num_terms: int, width: int, rng: random.Random
) -> List[Tuple[set, set]]:
    """Random DNF terms as (positive, negative) atom sets."""
    terms = []
    for _ in range(num_terms):
        chosen = rng.sample(list(atoms), min(width, len(atoms)))
        positive, negative = set(), set()
        for atom in chosen:
            (positive if rng.random() < 0.5 else negative).add(atom)
        terms.append((positive, negative))
    return terms


def random_qbf2(
    num_x: int,
    num_y: int,
    num_terms: int = 4,
    width: int = 3,
    seed: int = 0,
) -> QBF2:
    """A random ``∃X ∀Y`` 2QBF with a DNF matrix (the Σ₂ᵖ-complete form
    the reductions start from)."""
    rng = random.Random(seed)
    x = [f"x{i}" for i in range(1, num_x + 1)]
    y = [f"y{i}" for i in range(1, num_y + 1)]
    terms = random_dnf_terms(x + y, num_terms, width, rng)
    return exists_forall(x, y, dnf_formula(terms))


def random_query_formula(
    atoms: Sequence[str], depth: int = 3, seed: int = 0
) -> Formula:
    """A random propositional query formula over ``atoms`` (for the
    formula-inference benchmarks)."""
    rng = random.Random(seed)
    pool = list(atoms)

    def build(level: int) -> Formula:
        if level == 0 or rng.random() < 0.3:
            atom = rng.choice(pool)
            return Var(atom) if rng.random() < 0.5 else Not(Var(atom))
        arity = rng.randint(2, 3)
        parts = [build(level - 1) for _ in range(arity)]
        return conj(parts) if rng.random() < 0.5 else disj(parts)

    return build(depth)
