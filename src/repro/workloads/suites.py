"""Named, versioned instance suites (reproducibility stamps).

The evidence in EXPERIMENTS.md quantifies over generated instances; this
module freezes the exact suites behind names and content digests so that
a rerun — on another machine, after a refactor — can assert it measured
the *same* inputs.  The digest is a SHA-256 over a canonical rendering;
the regression tests pin the current digests, so any accidental change
to a generator's sampling behaviour is caught immediately.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..logic.database import DisjunctiveDatabase
from .random_db import (
    random_deductive_db,
    random_normal_db,
    random_positive_db,
    random_stratified_db,
)


@dataclass(frozen=True)
class Suite:
    """A named, frozen list of databases."""

    name: str
    instances: Tuple[DisjunctiveDatabase, ...]

    def digest(self) -> str:
        """SHA-256 over the canonical rendering of every instance."""
        hasher = hashlib.sha256()
        for db in self.instances:
            hasher.update(str(db).encode())
            hasher.update(b"\x00")
            hasher.update(",".join(sorted(db.vocabulary)).encode())
            hasher.update(b"\x01")
        return hasher.hexdigest()

    def stats(self) -> Dict[str, int]:
        """Aggregate structural statistics."""
        totals = {"instances": len(self.instances), "clauses": 0,
                  "atoms": 0, "integrity": 0, "with_negation": 0}
        for db in self.instances:
            s = db.stats()
            totals["clauses"] += s["clauses"]
            totals["atoms"] += s["atoms"]
            totals["integrity"] += s["integrity"]
            totals["with_negation"] += s["with_negation"]
        return totals


def table1_suite(count: int = 8, atoms: int = 5, clauses: int = 6) -> Suite:
    """The positive-DDB regime (Table 1)."""
    return Suite(
        "table1-positive",
        tuple(
            random_positive_db(atoms, clauses, seed=seed)
            for seed in range(count)
        ),
    )


def table2_suite(count: int = 8, atoms: int = 5, clauses: int = 6) -> Suite:
    """The with-integrity-clauses regime (Table 2, closure rows)."""
    return Suite(
        "table2-deductive-ics",
        tuple(
            random_deductive_db(atoms, clauses, seed=seed)
            for seed in range(count)
        ),
    )


def stratified_suite(
    count: int = 8, atoms: int = 5, clauses: int = 6
) -> Suite:
    """The DSDB regime (ICWA row)."""
    return Suite(
        "table2-stratified",
        tuple(
            random_stratified_db(atoms, clauses, seed=seed)
            for seed in range(count)
        ),
    )


def normal_suite(count: int = 8, atoms: int = 5, clauses: int = 6) -> Suite:
    """The DNDB regime (PERF/DSM/PDSM rows)."""
    return Suite(
        "table2-normal",
        tuple(
            random_normal_db(
                atoms, clauses, neg_fraction=0.4, ic_fraction=0.15,
                seed=seed,
            )
            for seed in range(count)
        ),
    )


ALL_SUITES: Dict[str, Callable[[], Suite]] = {
    "table1-positive": table1_suite,
    "table2-deductive-ics": table2_suite,
    "table2-stratified": stratified_suite,
    "table2-normal": normal_suite,
}


def suite_digests() -> Dict[str, str]:
    """Current digests of every registered suite (at default sizes)."""
    return {name: build().digest() for name, build in ALL_SUITES.items()}
