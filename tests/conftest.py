"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.logic.clause import Clause
from repro.logic.database import DisjunctiveDatabase
from repro.logic.parser import parse_database

# Project-wide hypothesis profile: no deadline (SAT calls vary in time),
# modest example counts to keep the suite quick.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
# CI profile: derandomized (a red build must mean a regression, not a
# lucky draw) with a smaller example budget.
settings.register_profile(
    "ci",
    deadline=None,
    max_examples=15,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))

#: Small atom pool used by random strategies.
ATOMS = ["a", "b", "c", "d", "e"]


@st.composite
def clauses(draw, atoms=None, allow_neg=True, allow_ic=True):
    """Hypothesis strategy for random clauses over a small pool."""
    pool = atoms or ATOMS
    head_size = draw(
        st.integers(min_value=0 if allow_ic else 1, max_value=2)
    )
    head = draw(
        st.lists(st.sampled_from(pool), min_size=head_size,
                 max_size=head_size, unique=True)
    )
    body_pool = [a for a in pool if a not in head]
    body_pos = draw(
        st.lists(st.sampled_from(body_pool or pool), max_size=2, unique=True)
    ) if body_pool else []
    body_neg = []
    if allow_neg and body_pool:
        body_neg = draw(
            st.lists(
                st.sampled_from(body_pool), max_size=1, unique=True
            )
        )
    if not head and not body_pos and not body_neg:
        body_pos = [pool[0]]
    return Clause.rule(head, body_pos, body_neg)


@st.composite
def databases(draw, allow_neg=True, allow_ic=True, max_clauses=5):
    """Hypothesis strategy for small random databases."""
    count = draw(st.integers(min_value=1, max_value=max_clauses))
    clause_list = [
        draw(clauses(allow_neg=allow_neg, allow_ic=allow_ic))
        for _ in range(count)
    ]
    return DisjunctiveDatabase(clause_list, ATOMS)


@st.composite
def positive_databases(draw, max_clauses=5):
    """Strategy for Table 1 regime databases (no ICs, no negation)."""
    return draw(databases(allow_neg=False, allow_ic=False,
                          max_clauses=max_clauses))


@pytest.fixture
def simple_db() -> DisjunctiveDatabase:
    """``a | b.  c :- a.`` — the running example."""
    return parse_database("a | b. c :- a.")


@pytest.fixture
def example_31() -> DisjunctiveDatabase:
    """Example 3.1 from the paper."""
    return parse_database("a | b. :- a, b. c :- a, b.")


@pytest.fixture
def stratified_db() -> DisjunctiveDatabase:
    """A small DSDB with two strata."""
    return parse_database("a | b. c :- a. d :- b, not c.")


@pytest.fixture
def unstratified_db() -> DisjunctiveDatabase:
    """The even negative loop (no stratification)."""
    return parse_database("a :- not b. b :- not a.")


def random_small_db(seed: int, allow_neg=True, allow_ic=True,
                    atoms=4, clause_count=5) -> DisjunctiveDatabase:
    """Deterministic small random database for table-driven tests."""
    rng = random.Random(seed)
    pool = [f"v{i}" for i in range(1, atoms + 1)]
    built = []
    for _ in range(clause_count):
        head_size = rng.randint(0 if allow_ic else 1, 2)
        head = rng.sample(pool, head_size)
        rest = [a for a in pool if a not in head]
        body_pos = rng.sample(rest, min(len(rest), rng.randint(0, 2)))
        body_neg = []
        if allow_neg and rest:
            body_neg = rng.sample(rest, min(len(rest), rng.randint(0, 1)))
        if not head and not body_pos and not body_neg:
            body_pos = [pool[0]]
        built.append(Clause.rule(head, body_pos, body_neg))
    return DisjunctiveDatabase(built, pool)
