"""Seeded known-bad fixture: a coNP-classified semantics reaching the
Σ₂ᵖ primitive through two helper hops.

Never imported at runtime — analyzed statically by
``tests/test_static_check.py``, which asserts the whole-program checker
reports RPR101 at the ``infers`` definition below (the declared ``pws``
row forbids Σ₂ᵖ dispatch in every regime, yet
``infers -> _helper_one -> _helper_two -> find_minimal_satisfying``).
"""

from repro.sat.minimal import MinimalModelSolver
from repro.semantics.base import Semantics


def _helper_two(db):
    solver = MinimalModelSolver(db)
    return solver.find_minimal_satisfying(None)


def _helper_one(db):
    return _helper_two(db)


class LeakyPws(Semantics):
    """Declares the coNP ``pws`` row but dispatches minimal-model
    search — exactly the transitive leak RPR101 must catch."""

    name = "pws"

    def infers(self, db, formula):
        return _helper_one(db) is not None
