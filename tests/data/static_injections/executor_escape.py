"""Seeded known-bad fixture: guarded state escaping into a worker.

``entries`` is guarded by ``self._lock`` in ``add_safe``; ``_drain``
mutates it unguarded (RPR201) and ``launch`` hands ``_drain`` to a
thread-pool worker, so the unguarded mutation races every guarded
critical section from another thread (RPR204 at the ``submit`` call).
"""

import threading
from concurrent.futures import ThreadPoolExecutor


class SharedBox:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = []

    def add_safe(self, item):
        with self._lock:
            self.entries.append(item)

    def _drain(self):
        self.entries.clear()  # seeded RPR201: unguarded mutation

    def launch(self):
        pool = ThreadPoolExecutor(max_workers=1)
        return pool.submit(self._drain)  # seeded RPR204: escape
