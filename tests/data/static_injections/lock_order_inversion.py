"""Seeded known-bad fixture: two locks acquired in opposite orders.

``forward`` takes ``_a`` then ``_b``; ``backward`` takes ``_b`` then
``_a`` — a deadlock under contention, reported once as RPR203.
"""

import threading


class TwoLocks:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.items = []

    def forward(self):
        with self._a:
            with self._b:  # seeded RPR203: inverted below
                return list(self.items)

    def backward(self):
        with self._b:
            with self._a:
                self.items.append(1)
