"""Seeded known-bad fixture: the original PR 9 lost-update pattern.

A ``+=`` on the :data:`repro.runtime.budget.RUNTIME_STATS` facade is a
locked read followed by a locked write — two critical sections, not
one — and must be reported as RPR202 (this retires the one-off regex
scan that used to live in ``tests/test_thread_safety.py``).
"""

from repro.runtime.budget import RUNTIME_STATS


def racy_tick():
    RUNTIME_STATS.budgets_exceeded += 1  # seeded RPR202: RMW on facade
