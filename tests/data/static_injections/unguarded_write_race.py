"""Seeded known-bad fixture: mixed guarded/unguarded mutation.

``hits`` and ``misses`` are both written under ``self._lock`` in some
methods, so the lock is their inferred guard — then ``reset`` writes
``hits`` unguarded (RPR201) and ``sloppy_bump`` performs a non-atomic
``+=`` on ``misses`` outside the guard (RPR202, the lost-update shape).
"""

import threading


class LeakyCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def record_hit(self):
        with self._lock:
            self.hits += 1

    def record_miss(self):
        with self._lock:
            self.misses += 1

    def reset(self):
        self.hits = 0  # seeded RPR201: unguarded write

    def sloppy_bump(self):
        self.misses += 1  # seeded RPR202: unguarded read-modify-write
