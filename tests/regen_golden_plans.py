"""Regenerate ``tests/data/golden_plans.json`` from the live planner.

Run after a *deliberate* cost-model or lattice change, then review the
diff — every changed procedure or predicted count is a plan regression
you are explicitly signing off on:

    PYTHONPATH=src python tests/regen_golden_plans.py
"""

from __future__ import annotations

import json
import os

from repro.analysis.fragment import fragment_profile
from repro.analysis.planner import FragmentPlanner
from repro.logic.parser import parse_database
from repro.semantics import get_semantics

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "golden_plans.json"
)

# One database per lattice region, including barely-outside witnesses
# (non-HCF head cycle, unstratified pair) that must stay on default.
DATABASES = {
    "horn-facts-and-rules": "a. b :- a. c :- a, b. :- c, d.",
    "definite-chain": "p1. p2 :- p1. p3 :- p2.",
    "acyclic-disjunctive": "a | b. c :- a. c :- b.",
    "hcf-with-scc": "a | b. c :- a. c :- b. d :- c. c :- d.",
    "non-hcf-head-cycle": "a | b. a :- b. b :- a.",
    "stratified-normal-tower": "win1 :- not win2. win2 :- not win3. win3.",
    "stratified-disjunctive": "a. b | c :- not a.",
    "unstratified-pair": "x :- not y. y :- not x.",
    "disjunctive-with-negation": "a | b. c :- a, not d. d :- b.",
    # 14 connected atoms: past the kernel's priced-out point, so the
    # PR 7 closure/founded dispatch is pinned on a large vocabulary.
    "hcf-long-chain": (
        "a | b. x1 :- a. x1 :- b. "
        + " ".join(f"x{i + 1} :- x{i}." for i in range(1, 12))
    ),
}

# (semantics, method) pairs covering every dispatch family: Horn
# collapse, FF-reducible formula/literal closure, MM-reducible
# inference, perfect collapse, the supported tight fast path, and the
# non-collapsing pdsm control.
CASES = (
    ("cwa", "infers"), ("gcwa", "infers"), ("gcwa", "infers_literal"),
    ("ccwa", "infers_literal"), ("egcwa", "infers"),
    ("egcwa", "model_set"), ("ecwa", "infers_brave"),
    ("circ", "has_model"), ("icwa", "infers"),
    ("perf", "infers_literal"), ("dsm", "infers"), ("pdsm", "infers"),
    ("supported", "infers"),
)


def build_entries():
    planner = FragmentPlanner()
    entries = []
    for db_id, text in sorted(DATABASES.items()):
        prof = fragment_profile(parse_database(text))
        for semantics, method in CASES:
            plan = planner.plan(prof, get_semantics(semantics), method)
            entries.append(
                {
                    "id": f"{db_id}/{semantics}/{method}",
                    "db": text,
                    "semantics": semantics,
                    "method": method,
                    "expected": {
                        "fragment": plan.fragment,
                        "procedure": plan.procedure,
                        "claim": plan.claim,
                        "predicted_np_calls": plan.predicted_np_calls,
                        "predicted_sigma2": plan.predicted_sigma2,
                        "predicted_nodes": plan.predicted_nodes,
                    },
                }
            )
    return entries


def main() -> None:
    payload = {
        "comment": (
            "Golden query plans: regenerate with PYTHONPATH=src python "
            "tests/regen_golden_plans.py after a deliberate cost-model "
            "change."
        ),
        "entries": build_entries(),
    }
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(payload['entries'])} entries to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
