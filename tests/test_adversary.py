"""End-to-end tests of the adversarial scenario factory.

Covers the hunter pipeline (seeded determinism, clean runs on the
healthy tree, divergence capture under an injected planner bug with a
minimized diagnosis report), the corpus-folding idempotence contract,
and the ``repro-ddb hunt`` CLI surface.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.adversary import (
    CorpusEntry,
    HuntConfig,
    build_case,
    corpus_databases,
    corpus_id,
    fold_survivors,
    hunt,
    injected_planner_bug,
    load_corpus,
)
from repro.adversary.report import render_diagnosis, report_filename
from repro.cli import main as cli_main
from repro.engine.cache import clear_cache
from repro.logic.parser import parse_database


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Injected bugs must never leak corrupted values through the
    process-wide engine cache into other tests."""
    clear_cache()
    yield
    clear_cache()


# ----------------------------------------------------------------------
# The hunt loop
# ----------------------------------------------------------------------
def test_hunt_is_deterministic_per_seed():
    first = build_case(HuntConfig(seed=11), 3)
    second = build_case(HuntConfig(seed=11), 3)
    assert first is not None and second is not None
    assert first.base == second.base
    assert first.mutant == second.mutant
    assert first.semantics == second.semantics
    assert str(first.query) == str(second.query)


def test_hunt_clean_on_healthy_tree():
    report = hunt(HuntConfig(seed=2026, max_cases=40, budget_ms=120_000))
    assert report.clean, [d.summary() for d in report.divergences]
    assert report.cases_run == 40
    assert report.mutants_checked > 0
    assert report.certificate_checks > 0


@pytest.mark.slow
def test_hunt_500_cases_zero_divergences():
    """The acceptance-criteria run: >=500 mutated databases, in budget,
    zero unexplained divergences on the current tree."""
    report = hunt(HuntConfig(seed=0, max_cases=500, budget_ms=600_000))
    assert report.cases_run == 500
    assert not report.budget_exhausted
    assert report.clean, [d.summary() for d in report.divergences]


def test_boundary_mutators_oversampled_near_fast_paths():
    """Bases in planner fast-path territory must draw the boundary
    mutators (barely-non-Horn / barely-non-HCF / barely-unstratified)
    well above their catalogue share, so hunts concentrate on the cost
    model's dispatch edges."""
    config = HuntConfig(seed=404, regimes=("horn", "positive"))
    kinds = {"boundary": 0, "metamorphic": 0}
    for index in range(200):
        case = build_case(config, index)
        if case is None or case.mutator is None:
            continue
        kinds[case.mutator.kind] += 1
    total = kinds["boundary"] + kinds["metamorphic"]
    assert total > 100
    # Unweighted, boundary mutators are ~2 of ~9 applicable choices
    # (~22%); the 3x weighting must push them past one third.
    assert kinds["boundary"] / total > 1 / 3


@pytest.mark.slow
def test_hunt_planner_cost_paths_zero_divergences():
    """Pinned slow-lane hunt over the planner-heavy regimes: Horn,
    deductive and stratified bases with boundary mutants over-sampled,
    exercising the cost model's fast-path/fallback edges (hcf-founded
    single-query literals, hcf-closure memoization, stratified-perfect)
    through the full six-engine differential stack."""
    report = hunt(
        HuntConfig(
            seed=1816,  # Truszczyński trichotomy arXiv 1007.2816
            max_cases=300,
            budget_ms=600_000,
            regimes=("horn", "positive", "deductive", "stratified"),
        )
    )
    assert report.cases_run == 300
    assert not report.budget_exhausted
    assert report.clean, [d.summary() for d in report.divergences]


def test_ground_truth_cap_is_not_a_divergence():
    """PWS split enumeration refuses instances above MAX_SPLITS with
    GroundTruthCapError; the hunter must treat that as "ground truth
    unavailable" and not flag the polynomial-check engines (which agree
    with each other) as a six-engine disagreement."""
    from repro.errors import GroundTruthCapError
    from repro.adversary.hunter import find_engine_disagreement
    from repro.logic.parser import parse_formula
    from repro.semantics import get_semantics
    from repro.semantics.pws import possible_models_by_splits

    # 7 wide disjunctive clauses: split_count = 7^7 = 823543 > 2^16.
    text = " ".join(
        f"a{i} | b{i} | c{i}." for i in range(7)
    )
    db = parse_database(text)
    with pytest.raises(GroundTruthCapError):
        possible_models_by_splits(db)
    assert get_semantics("pws", engine="oracle").has_model(db)
    assert (
        find_engine_disagreement(
            db, "pws", parse_formula("a0"), "a0"
        )
        is None
    )


def test_hunt_respects_wall_budget():
    report = hunt(HuntConfig(seed=1, max_cases=100_000, budget_ms=0.0))
    assert report.budget_exhausted
    assert report.cases_run < 100_000


def test_injected_planner_bug_is_caught_and_minimized(tmp_path):
    reports_dir = tmp_path / "reports"
    with injected_planner_bug():
        clear_cache()
        report = hunt(
            HuntConfig(
                seed=3,
                max_cases=40,
                budget_ms=300_000,
                reports_dir=str(reports_dir),
                corpus_path=str(tmp_path / "corpus.json"),
            )
        )
    assert not report.clean  # the hunter MUST catch the corruption
    divergence = report.divergences[0]
    assert divergence.kind == "engine-disagreement"
    assert len(divergence.db.clauses) <= 15  # acceptance criterion
    assert divergence.report_path is not None
    text = open(divergence.report_path).read()
    assert "# Divergence: engine-disagreement" in text
    assert "ground truth" in text
    assert "repro-ddb hunt --seed 3" in text
    assert "## Fragment profile" in text
    # Survivors reached the corpus.
    assert report.corpus_added >= 1


def test_diagnosis_report_sections(tmp_path):
    with injected_planner_bug():
        clear_cache()
        report = hunt(HuntConfig(seed=3, max_cases=10, budget_ms=300_000))
    divergence = report.divergences[0]
    text = render_diagnosis(divergence)
    for section in (
        "## Reproduction",
        "## Disagreement",
        "## Minimized witness",
        "## Fragment profile",
        "## Oracle-call accounting",
        "```json",
        "```prolog",
    ):
        assert section in text, section
    seed_line = json.loads(
        text.split("```json\n", 1)[1].split("\n```", 1)[0]
    )
    assert seed_line["seed"] == 3
    assert report_filename(divergence).endswith(".md")


# ----------------------------------------------------------------------
# Corpus folding: canonical, deduplicated, idempotent
# ----------------------------------------------------------------------
def _entry(text, **kwargs):
    return CorpusEntry(db=parse_database(text), **kwargs)


def test_fold_survivors_dedups_and_sorts(tmp_path):
    path = str(tmp_path / "corpus.json")
    a = _entry("a | b.", kind="engine-disagreement", semantics="gcwa")
    b = _entry("c :- d.", kind="certificate-violation", semantics="circ")
    added, total = fold_survivors(path, [a, b, a])
    assert (added, total) == (2, 2)
    ids = [entry.id for entry in load_corpus(path)]
    assert ids == sorted(ids)


def test_fold_survivors_idempotent_bytes(tmp_path):
    """Folding the same survivors twice neither grows nor rewrites the
    file — the checked-in corpus only changes for genuinely new
    witnesses."""
    path = str(tmp_path / "corpus.json")
    survivors = [_entry("a | b."), _entry("c :- d, not e.")]
    fold_survivors(path, survivors)
    before = open(path, "rb").read()
    mtime = os.path.getmtime(path)
    added, total = fold_survivors(path, list(reversed(survivors)))
    assert (added, total) == (0, 2)
    assert open(path, "rb").read() == before
    assert os.path.getmtime(path) == mtime  # not even rewritten


def test_fold_survivors_grows_only_for_new(tmp_path):
    path = str(tmp_path / "corpus.json")
    fold_survivors(path, [_entry("a | b.")])
    added, total = fold_survivors(path, [_entry("a | b."), _entry("x.")])
    assert (added, total) == (1, 2)


def test_corpus_id_is_canonical():
    """Structurally equal databases hash identically regardless of the
    textual clause order they were parsed from."""
    one = parse_database("a | b. c :- a.")
    two = parse_database("c :- a. a | b.")
    assert corpus_id(one) == corpus_id(two)
    assert corpus_id(one) != corpus_id(parse_database("a | b."))


def test_corpus_roundtrip(tmp_path):
    path = str(tmp_path / "corpus.json")
    entry = _entry(
        "a | b. :- a, b.", kind="engine-disagreement",
        semantics="egcwa", method="model_set", origin="{'seed': 5}",
    )
    fold_survivors(path, [entry])
    (loaded,) = load_corpus(path)
    assert loaded.db == entry.db
    assert loaded.semantics == "egcwa"
    assert corpus_databases(path) == [(entry.id, entry.db)]


def test_checked_in_corpus_is_canonical():
    """The committed corpus file is in canonical form: re-folding
    nothing into it must not change a byte."""
    path = os.path.join(
        os.path.dirname(__file__), "data", "adversarial_corpus.json"
    )
    assert os.path.exists(path)
    before = open(path, "rb").read()
    added, _total = fold_survivors(path, [])
    assert added == 0
    assert open(path, "rb").read() == before


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_hunt_clean(capsys):
    code = cli_main(
        ["hunt", "--seed", "9", "--max-cases", "5", "--format", "json"]
    )
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert code == 0
    assert payload["cases_run"] == 5
    assert payload["divergences"] == []


def test_cli_hunt_reports_divergence(tmp_path, capsys):
    with injected_planner_bug():
        clear_cache()
        code = cli_main(
            [
                "hunt", "--seed", "3", "--max-cases", "10",
                "--reports-dir", str(tmp_path / "reports"),
                "--corpus", str(tmp_path / "corpus.json"), "--fold",
            ]
        )
    out = capsys.readouterr().out
    assert code == 1  # divergences -> nonzero exit for CI
    assert "DIVERGENCES" in out
    assert list((tmp_path / "reports").glob("*.md"))
    assert (tmp_path / "corpus.json").exists()
