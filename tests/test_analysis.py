"""Tests for the static-analysis subsystem (:mod:`repro.analysis`).

Prong 1 — input analysis: fragment detectors with *is* / *is-barely-not*
witness pairs, planner dispatch, the zero-SAT-call Horn fast path, and
the certifier's tightened fragment envelopes.

Prong 2 — codebase analysis: the linter must report a clean tree on this
PR *and* flag seeded violations (both directions of the CI gate), with
inline waivers honoured.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    FragmentAnalyzer,
    FragmentPlanner,
    fragment_profile,
)
from repro.analysis.lint import (
    conp_semantics,
    default_target,
    lint_file,
    lint_paths,
    main as lint_main,
)
from repro.analysis.planner import (
    DEFAULT_PROCEDURE,
    HCF_CLOSURE_PROCEDURE,
    HCF_PROCEDURE,
    HORN_COLLAPSE,
    HORN_PROCEDURE,
    KERNEL_PROCEDURE,
)
from repro.analysis.procedures import (
    HeadCycleFreeSolver,
    horn_least_model,
    is_founded_minimal,
)
from repro.complexity.oracles import count_sat_calls
from repro.engine.cache import ENGINE_CACHE, stratification_for
from repro.errors import ReproError
from repro.logic.parser import parse_database, parse_formula
from repro.obs.accounting import OracleObservation, observe
from repro.obs.certify import Certifier, Task
from repro.semantics import get_semantics
from repro.semantics.stratification import stratify
from repro.session import DatabaseSession


# ----------------------------------------------------------------------
# Fragment detectors: is / is-barely-not witness pairs
# ----------------------------------------------------------------------
def profile(text: str):
    return FragmentAnalyzer().analyze(parse_database(text))


def test_definite_witness():
    p = profile("a. b :- a.")
    assert p.fragment == "definite"
    assert p.is_definite and p.is_horn and p.head_cycle_free


def test_barely_not_definite_integrity():
    """One integrity clause: still Horn, no longer definite."""
    p = profile("a. b :- a. :- a, c.")
    assert not p.is_definite
    assert p.is_horn
    assert p.fragment == "horn"


def test_barely_not_horn_disjunction():
    """One 2-atom head: no longer Horn, still acyclic-deductive (the
    positive dependency graph of a chain has no cycle at all)."""
    p = profile("a. b :- a. c | d :- b.")
    assert not p.is_horn
    assert p.head_cycle_free and p.positive_acyclic
    assert p.fragment == "acyclic-deductive"


def test_acyclic_witness_and_self_loop_boundary():
    """A single self-loop breaks acyclicity but not head-cycle-freeness
    — the trichotomy refinement's own is/is-barely-not pair."""
    p = profile("a | b. c :- a. c :- b.")
    assert p.positive_acyclic
    assert p.fragment == "acyclic-deductive"
    q = profile("a | b. c :- a. c :- b. c :- c.")
    assert not q.positive_acyclic and q.head_cycle_free
    assert q.fragment == "hcf-deductive"


def test_hcf_witness():
    """Disjunctive heads whose atoms never share a positive cycle: a
    positive cycle elsewhere (c <-> d) keeps HCF but not acyclicity."""
    p = profile("a | b. c :- a. c :- b. d :- c. c :- d.")
    assert p.head_cycle_free and not p.positive_acyclic
    assert p.largest_scc == 2
    assert p.fragment == "hcf-deductive"


def test_barely_not_hcf_head_cycle():
    """The minimal head cycle: a and b support each other positively
    *and* share a disjunctive head."""
    p = profile("a | b. a :- b. b :- a.")
    assert not p.head_cycle_free
    assert p.fragment == "deductive"
    assert p.largest_scc == 2


def test_hcf_heads_not_tied():
    """Sharing a head must NOT merge SCCs by itself (heads are tied in
    the stratification graph but deliberately not here)."""
    p = profile("a | b.")
    assert p.head_cycle_free
    assert p.scc_count == 2 and p.largest_scc == 1


def test_stratified_normal_witness():
    """Stratified with every head ≤ 1 atom: the trichotomy's pure-P
    cell (unique perfect = unique stable model)."""
    p = profile("a. b :- not a.")
    assert p.is_stratified
    assert p.strata >= 2
    assert p.max_head_width == 1
    assert p.fragment == "stratified-normal"


def test_stratified_witness():
    """A disjunctive head keeps the database out of the normal cell."""
    p = profile("a. b | c :- not a.")
    assert p.is_stratified
    assert p.strata >= 2
    assert p.fragment == "stratified"


def test_barely_not_stratified_negative_cycle():
    p = profile("a :- not b. b :- not a.")
    assert not p.is_stratified
    assert p.strata == 0
    assert p.fragment == "general"


def test_positive_is_orthogonal_to_the_chain():
    """Table 1's regime: negation-free AND no integrity clauses."""
    assert profile("a. b :- a.").is_positive
    assert not profile("a. :- a, b.").is_positive  # IC => Table 2
    assert profile("a. :- a, b.").negation_free


# ----------------------------------------------------------------------
# Shared per-database caches
# ----------------------------------------------------------------------
def test_fragment_profile_memoized():
    db = parse_database("a. b :- a. c | d :- b.")
    fragment_profile(db)
    before = ENGINE_CACHE.stats()["hits_by_kind"].get("fragment_profile", 0)
    assert fragment_profile(db) is fragment_profile(db)
    hits = ENGINE_CACHE.stats()["hits_by_kind"]["fragment_profile"]
    assert hits >= before + 2


def test_stratification_cached_and_reused_by_analyzer():
    db = parse_database("a. b :- not a.")
    first = stratification_for(db)
    before = ENGINE_CACHE.stats()["hits_by_kind"].get("stratification", 0)
    assert stratification_for(db) is first
    ENGINE_CACHE.get_or_compute("fragment_profile", db, lambda: None)
    FragmentAnalyzer().analyze(db)  # profiles go through the same cache
    hits = ENGINE_CACHE.stats()["hits_by_kind"]["stratification"]
    assert hits >= before + 2


def test_stratification_level_unknown_atom_message():
    stratification = stratify(parse_database("a. b :- not a."))
    assert stratification is not None
    with pytest.raises(ReproError, match="not part of this stratification"):
        stratification.level("zz_unknown")


# ----------------------------------------------------------------------
# Fast-path procedures
# ----------------------------------------------------------------------
def test_horn_least_model_and_consistency():
    model, consistent = horn_least_model(
        parse_database("a. b :- a. c :- b, d.")
    )
    assert consistent and set(model) == {"a", "b"}
    _, consistent = horn_least_model(parse_database("a. b :- a. :- b."))
    assert not consistent


def test_foundedness_check():
    db = parse_database("a | b. c :- a. c :- b.")
    assert is_founded_minimal(db, {"a", "c"})
    assert not is_founded_minimal(db, {"a", "b", "c"})  # not minimal
    # A self-loop keeps the fragment HCF; {a} is founded through the
    # disjunctive fact (and is genuinely minimal).
    loop = parse_database("a | b. a :- a.")
    assert is_founded_minimal(loop, {"a"})
    assert is_founded_minimal(loop, {"b"})
    # Outside HCF the check is sound but incomplete: {a, b} is the only
    # (hence minimal) model of the head cycle, yet unfounded.
    cyc = parse_database("a | b. a :- b. b :- a.")
    assert not is_founded_minimal(cyc, {"a", "b"})


def test_hcf_solver_agrees_with_sigma2_machine():
    from repro.sat.minimal import MinimalModelSolver

    db = parse_database("a | b. c :- a. c :- b. d | e :- c.")
    reference = MinimalModelSolver(db)
    fast = HeadCycleFreeSolver(db)
    for text in ("c", "a", "d", "d | e", "a & b"):
        formula = parse_formula(text)
        assert fast.np_entails(formula) == reference.entails(formula), text


# ----------------------------------------------------------------------
# Planner dispatch
# ----------------------------------------------------------------------
def test_planner_horn_dispatch():
    prof = profile("a. b :- a.")
    planner = FragmentPlanner()
    for name in sorted(HORN_COLLAPSE - {"cwa"}):
        plan = planner.plan(prof, get_semantics(name), "infers")
        assert plan.procedure == HORN_PROCEDURE, name
        assert plan.claim == "P"
        assert plan.envelope_key == "horn"
    # Three-valued PDSM does not collapse and must stay on the default.
    plan = planner.plan(prof, get_semantics("pdsm"), "infers")
    assert plan.procedure == DEFAULT_PROCEDURE


def test_planner_hcf_dispatch():
    prof = profile("a | b. c :- a. c :- b.")
    planner = FragmentPlanner()
    # MM-reducible semantics answer with one founded search (cheaper
    # than the kernel's setup constant on any profile).
    for name in ("egcwa", "ecwa", "dsm"):
        plan = planner.plan(prof, get_semantics(name), "infers")
        assert plan.procedure == HCF_PROCEDURE, name
        assert plan.claim == "coNP"
        assert plan.envelope_key == "hcf"
    # The GCWA family's formula inference on a *small* vocabulary is
    # cheapest on the bitset kernel (zero oracle calls); the literal
    # reduction stays on the single founded search.
    for name in ("gcwa", "ccwa"):
        plan = planner.plan(prof, get_semantics(name), "infers")
        assert plan.procedure == KERNEL_PROCEDURE, name
        assert plan.claim == "EXP"
        assert plan.envelope_key == "kernel"
        literal_plan = planner.plan(
            prof, get_semantics(name), "infers_literal"
        )
        assert literal_plan.procedure == HCF_PROCEDURE, name
    # model_set on a small vocabulary also rides the kernel now (the
    # enumeration is exactly what the kernel packs).
    plan = planner.plan(prof, get_semantics("egcwa"), "model_set")
    assert plan.procedure == KERNEL_PROCEDURE


def test_planner_hcf_dispatch_large_vocabulary():
    """Past the kernel's exponential sweep the PR 7 dispatch is intact:
    the 26-bit-capped kernel term prices a 14-atom connected database
    out, so the founded closure / default fallbacks win again."""
    chain = " ".join(f"x{i + 1} :- x{i}." for i in range(1, 12))
    prof = profile(f"a | b. x1 :- a. x1 :- b. {chain}")
    assert prof.atoms == 14 and prof.component_count == 1
    planner = FragmentPlanner()
    for name in ("gcwa", "ccwa"):
        plan = planner.plan(prof, get_semantics(name), "infers")
        assert plan.procedure == HCF_CLOSURE_PROCEDURE, name
        assert plan.claim == "coNP"
        assert plan.envelope_key == "hcf"
    plan = planner.plan(prof, get_semantics("egcwa"), "infers")
    assert plan.procedure == HCF_PROCEDURE
    # model_set has no NP-level reduction (there can be exponentially
    # many minimal models) and the kernel is priced out: default.
    plan = planner.plan(prof, get_semantics("egcwa"), "model_set")
    assert plan.procedure == DEFAULT_PROCEDURE


def test_planner_respects_non_default_partition():
    """The fast paths are proved for the default partition only."""
    prof = profile("a. b :- a.")
    inner = get_semantics("ecwa", p=["a"], z=["b"])
    plan = FragmentPlanner().plan(prof, inner, "infers")
    assert plan.procedure == DEFAULT_PROCEDURE
    assert "partition" in plan.reason


def test_planner_head_cycle_falls_back():
    # A head cycle disables every founded candidate.  On a tiny
    # vocabulary the kernel (which needs no head-cycle-freeness — it
    # enumerates) still wins; on a large one nothing is left but the
    # default engine.
    prof = profile("a | b. a :- b. b :- a.")
    plan = FragmentPlanner().plan(prof, get_semantics("egcwa"), "infers")
    assert plan.procedure == KERNEL_PROCEDURE
    chain = " ".join(f"x{i + 1} :- x{i}." for i in range(1, 12))
    big = profile(f"a | b. a :- b. b :- a. x1 :- a. {chain}")
    assert big.atoms == 14
    plan = FragmentPlanner().plan(big, get_semantics("egcwa"), "infers")
    assert plan.procedure == DEFAULT_PROCEDURE


# ----------------------------------------------------------------------
# The Horn fast path really is zero-SAT-call P (and certified as such)
# ----------------------------------------------------------------------
def test_horn_fast_path_zero_sat_calls():
    db = parse_database("a. b :- a. c :- a, b. d :- e.")
    session = DatabaseSession(db, engine="planned")
    with observe() as window, count_sat_calls() as counter:
        answer = session.ask("b & c", semantics="gcwa")
        literal = session.ask_literal("~d", semantics="egcwa")
    assert answer.verdict and literal.verdict
    assert counter.calls == 0
    assert window.np_calls == 0
    assert window.sigma2_dispatches == 0
    assert answer.plan.procedure == HORN_PROCEDURE
    assert answer.complexity is not None and answer.complexity.ok
    # The tightened envelope really is the all-zero Horn envelope.
    assert answer.complexity.envelope.np_calls.limit(len(db.vocabulary)) == 0


def test_hcf_fast_path_no_sigma2_dispatch():
    db = parse_database("a | b. c :- a. c :- b.")
    session = DatabaseSession(db, engine="planned")
    with observe() as window:
        answer = session.ask("c", semantics="egcwa")
    assert answer.verdict
    assert answer.plan.procedure == HCF_PROCEDURE
    assert window.sigma2_dispatches == 0
    assert answer.complexity is not None and answer.complexity.ok


def test_planned_engine_agrees_with_oracle_on_stray_atoms():
    """Out-of-vocabulary query atoms must be grounded to false, not
    treated as free SAT variables by the fast paths."""
    db = parse_database("a | b. c :- a. c :- b.")
    planned = get_semantics("egcwa", engine="planned")
    oracle = get_semantics("egcwa", engine="oracle")
    for literal in ("stray", "~stray"):
        assert planned.infers_literal(db, literal) == oracle.infers_literal(
            db, literal
        ), literal


def test_certifier_tightening_flags_single_np_call():
    """A Horn-planned query that issued even one NP call violates the
    tightened envelope — the same observation passes the table cell."""
    db = parse_database("a. b :- a.")
    planned = get_semantics("gcwa", engine="planned")
    plan = planned.plan_for(db, "infers")
    assert plan.envelope_key == "horn"
    observation = OracleObservation(np_calls=1)
    certifier = Certifier()
    tightened = certifier.check(
        "gcwa", Task.FORMULA, db, observation, "planned", plan=plan
    )
    assert not tightened.ok
    assert any(v.metric == "np_calls" for v in tightened.violations)
    relaxed = certifier.check(
        "gcwa", Task.FORMULA, db, observation, "planned", plan=None
    )
    assert relaxed.ok


# ----------------------------------------------------------------------
# Prong 2: the linter
# ----------------------------------------------------------------------
def test_lint_clean_on_this_tree(capsys):
    """Direction 1 of the CI gate: the shipped tree has zero findings."""
    assert lint_main([str(default_target())]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_lint_flags_seeded_violations(tmp_path, capsys):
    """Direction 2: a violating file fails the gate with the right rules."""
    seeded = tmp_path / "seeded.py"
    seeded.write_text(
        "from repro.sat.solver import SatSolver\n"
        "from repro.semantics.stratification import stratify\n"
        "\n"
        "def find_minimal_satisfying(condition):\n"
        "    solver = SatSolver()\n"
        "    while True:\n"
        "        if not solver.solve():\n"
        "            return None\n"
        "\n"
        "def analyze(db):\n"
        "    return stratify(db)\n"
    )
    findings = lint_paths([seeded])
    rules = {finding.rule for finding in findings}
    assert {"RPR001", "RPR002", "RPR004", "RPR006"} <= rules
    assert lint_main([str(seeded)]) == 1
    assert "RPR001" in capsys.readouterr().out


def test_lint_waivers_suppress(tmp_path):
    waived = tmp_path / "waived.py"
    waived.write_text(
        "from repro.sat.solver import SatSolver\n"
        "\n"
        "a = SatSolver()  # lint: ok RPR001 -- test fixture\n"
        "# lint: ok RPR001\n"
        "b = SatSolver()\n"
        "c = SatSolver()  # lint: ok RPR004 -- wrong rule, no effect\n"
    )
    findings = lint_file(waived)
    assert len(findings) == 1
    assert findings[0].line == 6


def test_lint_conp_purity_rule(tmp_path):
    """RPR003 fires only in the coNP-classified semantics modules."""
    package = tmp_path / "repro" / "semantics"
    package.mkdir(parents=True)
    body = "from ..sat.minimal import MinimalModelSolver\n"
    conp_file = package / "ddr.py"
    conp_file.write_text(body)
    other_file = package / "egcwa.py"
    other_file.write_text(body)
    assert {f.rule for f in lint_file(conp_file)} == {"RPR003"}
    assert lint_file(other_file) == []


def test_lint_unregistered_semantics(tmp_path):
    source = tmp_path / "rogue.py"
    source.write_text(
        "from repro.semantics.base import Semantics, register\n"
        "\n"
        "class Rogue(Semantics):\n"
        "    name = 'rogue'\n"
        "\n"
        "@register\n"
        "class OffTable(Semantics):\n"
        "    name = 'offtable'\n"
        "\n"
        "@register\n"
        "class Fine(Semantics):\n"
        "    name = 'egcwa'\n"
    )
    findings = [f for f in lint_file(source) if f.rule == "RPR005"]
    assert len(findings) == 2
    assert "not @register-ed" in findings[0].message
    assert "no Table 1/2 row claim" in findings[1].message


def test_lint_json_report(tmp_path, capsys):
    seeded = tmp_path / "one.py"
    seeded.write_text("from x import SatSolver\ns = SatSolver()\n")
    assert lint_main([str(seeded), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["count"] == 1
    assert report["findings"][0]["rule"] == "RPR001"


def test_conp_semantics_derived_from_tables():
    """The rule-3 module set is derived from the table claims and must
    match the static fallback the linter ships."""
    assert conp_semantics() == frozenset({"ddr", "pws"})
