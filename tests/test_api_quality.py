"""API quality gates: public items are documented, exports resolve, and
the packages import cleanly in isolation."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.logic",
    "repro.sat",
    "repro.qbf",
    "repro.models",
    "repro.semantics",
    "repro.engine",
    "repro.runtime",
    "repro.complexity",
    "repro.complexity.reductions",
    "repro.workloads",
    "repro.tables",
    "repro.ground",
]


def _walk_modules():
    seen = set()
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        seen.add(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                full = f"{package_name}.{info.name}"
                if full not in seen:
                    seen.add(full)
                    yield importlib.import_module(full)


@pytest.mark.parametrize(
    "module", list(_walk_modules()), ids=lambda m: m.__name__
)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_public_functions_documented():
    """Every public function/class reachable from the package roots
    carries a docstring."""
    undocumented = []
    for module in _walk_modules():
        for name, item in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isfunction(item) or inspect.isclass(item)):
                continue
            if getattr(item, "__module__", "").startswith("repro"):
                if not inspect.getdoc(item):
                    undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, sorted(set(undocumented))


def test_public_methods_documented():
    """Public methods on the central classes are documented."""
    from repro import DatabaseSession
    from repro.logic import Clause, DisjunctiveDatabase
    from repro.sat import CdclSolver, SatSolver
    from repro.semantics import Semantics

    for cls in (DatabaseSession, Clause, DisjunctiveDatabase, CdclSolver,
                SatSolver, Semantics):
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name}"


def test_version_is_exposed():
    assert repro.__version__


def test_semantics_registry_is_complete():
    from repro.semantics import SEMANTICS

    for name, cls in SEMANTICS.items():
        assert cls.name == name
        assert cls.description, name
        assert cls.__doc__, name
