"""Tests for repro.logic.atoms."""

import pytest

from repro.logic.atoms import Literal, atoms_of, is_valid_atom


class TestLiteral:
    def test_positive_by_default(self):
        assert Literal("a").positive

    def test_negation_flips_sign(self):
        assert -Literal("a") == Literal("a", False)

    def test_double_negation_is_identity(self):
        literal = Literal("a", False)
        assert -(-literal) == literal

    def test_negated_property_matches_operator(self):
        literal = Literal("x")
        assert literal.negated == -literal

    def test_str_positive(self):
        assert str(Literal("a")) == "a"

    def test_str_negative(self):
        assert str(Literal("a", False)) == "not a"

    def test_ordering_groups_by_atom(self):
        assert Literal("a", False) < Literal("a", True) < Literal("b", False)

    def test_ordering_against_non_literal_raises(self):
        with pytest.raises(TypeError):
            Literal("a") < 3  # noqa: B015

    def test_hashable_and_equal(self):
        assert len({Literal("a"), Literal("a"), Literal("a", False)}) == 2

    def test_pos_neg_constructors(self):
        assert Literal.pos("a") == Literal("a", True)
        assert Literal.neg("a") == Literal("a", False)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a", Literal("a", True)),
            ("not a", Literal("a", False)),
            ("-a", Literal("a", False)),
            ("~a", Literal("a", False)),
            ("  not   b ", Literal("b", False)),
        ],
    )
    def test_parse(self, text, expected):
        assert Literal.parse(text) == expected


class TestAtomValidation:
    @pytest.mark.parametrize("name", ["a", "x1", "foo_bar", "p(a,b)", "_x"])
    def test_valid_names(self, name):
        assert is_valid_atom(name)

    @pytest.mark.parametrize("name", ["1a", "a b", "", "a|b", "-a"])
    def test_invalid_names(self, name):
        assert not is_valid_atom(name)


def test_atoms_of_collects_atoms():
    literals = [Literal("a"), Literal("b", False), Literal("a", False)]
    assert atoms_of(literals) == {"a", "b"}
