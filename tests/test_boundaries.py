"""Boundary conditions: empty databases, single atoms, wide clauses,
inconsistent inputs — uniform behaviour across every semantics."""

import pytest

from repro import has_model, model_set, parse_database, parse_formula
from repro.logic.clause import Clause
from repro.logic.database import DisjunctiveDatabase
from repro.semantics import SEMANTICS, get_semantics

ALL = sorted(SEMANTICS)
DEDUCTIVE_ONLY = {"ddr", "pws"}
NLP_ONLY = {"supported"}


class TestEmptyDatabase:
    @pytest.mark.parametrize("name", ALL)
    def test_unique_empty_model(self, name):
        db = parse_database("")
        models = model_set(db, name)
        assert len(models) == 1
        assert has_model(db, name)

    @pytest.mark.parametrize("name", ALL)
    def test_tautologies_inferred(self, name):
        db = parse_database("")
        assert get_semantics(name).infers(db, parse_formula("true"))
        assert not get_semantics(name).infers(db, parse_formula("false"))


class TestPaddedVocabulary:
    """Atoms in the vocabulary but in no clause are false in every
    selected model of every closing semantics."""

    @pytest.mark.parametrize(
        "name", [n for n in ALL if n not in ("ddr", "cwa")]
    )
    def test_unused_atom_closed_to_false(self, name):
        db = parse_database("a.").with_vocabulary(["unused"])
        semantics = get_semantics(name)
        if name in NLP_ONLY or name not in DEDUCTIVE_ONLY:
            pass  # all fine for 'a.' (it is Horn, positive, stratified)
        for model in semantics.model_set(db):
            truth = model.true if hasattr(model, "true") else model
            assert "unused" not in truth, name

    def test_ddr_also_closes_unused_atoms(self):
        db = parse_database("a.").with_vocabulary(["unused"])
        assert get_semantics("ddr").infers_literal(db, "not unused")


class TestWideClauses:
    def test_wide_head(self):
        atoms = [f"x{i}" for i in range(12)]
        db = DisjunctiveDatabase([Clause.fact(*atoms)])
        assert len(model_set(db, "egcwa")) == 12  # one per singleton

    def test_wide_body(self):
        atoms = [f"b{i}" for i in range(10)]
        clauses = [Clause.fact(a) for a in atoms]
        clauses.append(Clause.rule(["head"], atoms))
        db = DisjunctiveDatabase(clauses)
        assert get_semantics("egcwa").infers_literal(db, "head")


class TestInconsistency:
    @pytest.mark.parametrize(
        "name",
        [n for n in ALL if n not in ("perf", "icwa")],
        # PERF rejects ICs syntactically; ICWA asserts consistency.
    )
    def test_inconsistent_db_has_no_models(self, name):
        db = parse_database("a. :- a.")
        if name in DEDUCTIVE_ONLY and db.has_negation:
            return
        semantics = get_semantics(name)
        assert semantics.model_set(db) == frozenset()
        assert not semantics.has_model(db)

    @pytest.mark.parametrize(
        "name", [n for n in ALL if n not in ("perf", "icwa")]
    )
    def test_inconsistent_db_infers_everything(self, name):
        db = parse_database("a. :- a.")
        assert get_semantics(name).infers(db, parse_formula("false"))


class TestSingleAtomPrograms:
    def test_fact_only(self):
        db = parse_database("a.")
        for name in ALL:
            models = model_set(db, name)
            assert len(models) == 1, name

    def test_self_negation(self):
        db = parse_database("a :- not a.")
        # classical models: {a}; minimal: {a}; stable: none;
        # partial stable: a undefined.
        assert model_set(db, "egcwa") == frozenset(
            {frozenset({"a"})}
        ) or {frozenset(m) for m in model_set(db, "egcwa")} == {
            frozenset({"a"})
        }
        assert not has_model(db, "dsm")
        assert has_model(db, "pdsm")
