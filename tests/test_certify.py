"""Complexity certification over the full differential corpus.

Every (semantics row, decision problem) cell of the paper's Table 1 and
Table 2 must (a) have a claim and an enforced envelope, and (b) hold
empirically: running the 220-database differential corpus through the
realized decision procedures under a *strict*
:class:`~repro.obs.certify.Certifier` raises no
:class:`~repro.obs.certify.CertificationError`.  A deliberately
miscounted fake machine closes the loop: the certifier must catch a
procedure whose oracle usage has the wrong shape (a coNP cell dispatching
the Σ₂ᵖ primitive, or nesting dispatches).
"""

from __future__ import annotations

import pytest

from repro.complexity.classes import ROW_ORDER, Regime, Task, table
from repro.logic.atoms import Literal
from repro.logic.parser import parse_database
from repro.obs.accounting import observe, sigma2_dispatch
from repro.obs.certify import (
    CertificationError,
    Certifier,
    ORACLE_ENGINES,
    TASK_FOR_METHOD,
    VIOLATIONS,
    canonical_name,
)
from repro.semantics import get_semantics
from repro.workloads import random_query_formula

from test_differential import COUNTS, SEMANTICS_FOR, build_db

#: The engines certified per corpus database: one oracle-envelope
#: representative (the pooled production engine) and the node-enveloped
#: brute ground truth.
ENGINES = ("oracle", "brute")


# ----------------------------------------------------------------------
# Static coverage: every table cell maps to a claim and an envelope
# ----------------------------------------------------------------------
@pytest.mark.parametrize("regime", [Regime.POSITIVE, Regime.WITH_ICS])
def test_every_cell_has_claim_and_envelope(regime):
    for row in ROW_ORDER:
        for task in Task:
            claim = Certifier.claim_for(row, task, regime)
            assert claim.upper is not None, (row, task)
            for engine in ORACLE_ENGINES + ("brute",):
                envelope = Certifier.envelope_for(row, task, regime, engine)
                assert envelope is not None, (row, task, engine)


def test_aliases_resolve_to_table_rows():
    for alias, row in (("circ", "ecwa"), ("wgcwa", "ddr"), ("pms", "pws")):
        assert canonical_name(alias) == row
    for row in ROW_ORDER:
        assert canonical_name(row) in [canonical_name(r) for r in ROW_ORDER]


def test_resilient_engine_is_out_of_scope():
    env = Certifier.envelope_for(
        "gcwa", Task.FORMULA, Regime.POSITIVE, "resilient"
    )
    assert env is None
    db = parse_database("a | b.")
    with observe() as window:
        pass
    cert = Certifier(strict=True).check(
        "gcwa", Task.FORMULA, db, window, "resilient"
    )
    assert not cert.certified and cert.ok


def test_task_for_method_covers_the_session_entry_points():
    assert TASK_FOR_METHOD["infers"] is Task.FORMULA
    assert TASK_FOR_METHOD["infers_literal"] is Task.LITERAL
    assert TASK_FOR_METHOD["has_model"] is Task.EXISTS_MODEL


# ----------------------------------------------------------------------
# Empirical: zero violations over the differential corpus
# ----------------------------------------------------------------------
def _certify_regime(regime: str) -> Certifier:
    certifier = Certifier(strict=True)
    for seed in range(COUNTS[regime]):
        db = build_db(regime, seed)
        query = random_query_formula(
            sorted(db.vocabulary), depth=2, seed=seed
        )
        literal = Literal.pos(sorted(db.vocabulary)[0])
        for name in SEMANTICS_FOR[regime]:
            for engine in ENGINES:
                semantics = get_semantics(name, engine=engine)
                for task, run in (
                    (Task.FORMULA, lambda s: s.infers(db, query)),
                    (Task.LITERAL, lambda s: s.infers_literal(db, literal)),
                    (Task.EXISTS_MODEL, lambda s: s.has_model(db)),
                ):
                    with observe() as window:
                        run(semantics)
                    certifier.check(name, task, db, window, engine)
    return certifier


@pytest.mark.parametrize("regime", sorted(COUNTS))
def test_corpus_has_zero_certificate_violations(regime):
    """Strict certification of every (db, semantics, task, engine) of a
    corpus regime: a violation raises, and the aggregate counters stay
    clean."""
    certifier = _certify_regime(regime)
    assert certifier.checked > 0
    assert certifier.violated == []


def test_corpus_covers_every_certifiable_cell():
    """The corpus exercises every (row, task) cell of both tables (via
    the applicability map), so the zero-violation tests above really do
    quantify over the whole of Tables 1 and 2."""
    covered = set()
    for regime, names in SEMANTICS_FOR.items():
        regimes_hit = {
            Certifier.classify(build_db(regime, seed))
            for seed in range(COUNTS[regime])
        }
        for name in names:
            for task in Task:
                for table_regime in regimes_hit:
                    covered.add((canonical_name(name), task, table_regime))
    for regime in (Regime.POSITIVE, Regime.WITH_ICS):
        for (row, task) in table(regime):
            assert (row, task, regime) in covered, (row, task, regime)


# ----------------------------------------------------------------------
# The certifier catches a miscounted machine
# ----------------------------------------------------------------------
def _run_miscounted_machine(db, query):
    """A fake decision procedure with the wrong oracle shape: it answers
    a coNP-cell formula query (DDR inference) by dispatching the Σ₂ᵖ
    primitive — nested, for good measure."""
    semantics = get_semantics("ddr", engine="oracle")
    with sigma2_dispatch():
        with sigma2_dispatch():  # illegal depth-2 nesting
            return semantics.infers(db, query)


def test_strict_certifier_catches_miscounted_machine():
    db = parse_database("a | b. c :- a.")
    query = random_query_formula(sorted(db.vocabulary), depth=2, seed=0)
    with observe() as window:
        _run_miscounted_machine(db, query)
    assert window.sigma2_dispatches >= 2
    assert window.max_sigma2_depth >= 2
    with pytest.raises(CertificationError) as excinfo:
        Certifier(strict=True).check(
            "ddr", Task.FORMULA, db, window, "oracle"
        )
    rendered = str(excinfo.value)
    assert "sigma2_dispatches" in rendered
    assert "max_sigma2_depth" in rendered


def test_production_certifier_records_instead_of_raising():
    db = parse_database("a | b. c :- a.")
    query = random_query_formula(sorted(db.vocabulary), depth=2, seed=0)
    with observe() as window:
        _run_miscounted_machine(db, query)
    before = VIOLATIONS.labels(semantics="ddr", task="FORMULA").value
    certifier = Certifier(strict=False)
    certificate = certifier.check(
        "ddr", Task.FORMULA, db, window, "oracle"
    )
    assert not certificate.ok
    assert certifier.violated == [certificate]
    after = VIOLATIONS.labels(semantics="ddr", task="FORMULA").value
    assert after == before + 1
    assert any(
        v.metric == "sigma2_dispatches" for v in certificate.violations
    )


# ----------------------------------------------------------------------
# Envelope rendering, overrides, and certificate export
# ----------------------------------------------------------------------
def test_bound_and_envelope_render_forms():
    from repro.obs.certify import Bound, CellEnvelope, UNBOUNDED

    assert UNBOUNDED.render() == "unbounded"
    assert Bound().render() == "0"
    assert Bound(const=2, per_atom=3).render() == "2 + 3n"
    assert Bound(exp_coef=4, exp_base=3.0).render() == "4*3^n"
    text = CellEnvelope(np_calls=Bound(const=1)).render()
    assert text.startswith("np<=1 ")
    assert "depth<=1" in text


def test_certificate_render_and_as_dict():
    db = parse_database("a | b. c :- a.")
    query = random_query_formula(sorted(db.vocabulary), depth=2, seed=0)
    with observe() as window:
        _run_miscounted_machine(db, query)
    with pytest.raises(CertificationError) as excinfo:
        Certifier(strict=True).check("ddr", Task.FORMULA, db, window, "oracle")
    certificate = excinfo.value.certificate
    assert not certificate.ok
    text = certificate.render()
    assert "VIOLATED" in text
    assert "sigma2_dispatches" in text
    data = certificate.as_dict()
    assert data["ok"] is False
    assert data["claim"] == certificate.claim.render()
    assert data["violations"]


def test_uncertified_certificate_renders_engine():
    db = parse_database("a | b.")
    with observe() as window:
        pass
    certificate = Certifier().check(
        "ddr", Task.FORMULA, db, window, "resilient"
    )
    assert not certificate.certified
    assert "uncertified" in certificate.render()
    assert certificate.as_dict()["envelope"] is None


def test_unknown_cell_raises_informative_keyerror():
    with pytest.raises(KeyError, match="no Table 1 cell"):
        Certifier.claim_for("nosuchsemantics", Task.FORMULA, Regime.POSITIVE)


def test_envelope_override_wins_over_class_default():
    from repro.obs import certify as certify_mod
    from repro.obs.certify import Bound, CellEnvelope

    key = ("ddr", Task.FORMULA, Regime.POSITIVE)
    custom = CellEnvelope(np_calls=Bound(const=99))
    certify_mod.ENVELOPE_OVERRIDES[key] = custom
    try:
        assert (
            Certifier.envelope_for(
                "ddr", Task.FORMULA, Regime.POSITIVE, "oracle"
            )
            is custom
        )
    finally:
        del certify_mod.ENVELOPE_OVERRIDES[key]


def test_violation_attaches_span_event():
    from repro.obs.trace import Tracer

    db = parse_database("a | b. c :- a.")
    query = random_query_formula(sorted(db.vocabulary), depth=2, seed=0)
    with observe() as window:
        _run_miscounted_machine(db, query)
    tracer = Tracer()
    certifier = Certifier(strict=False)
    with tracer.span("query.ask") as span:
        certificate = certifier.check(
            "ddr", Task.FORMULA, db, window, "oracle", span=span
        )
    assert not certificate.ok
    (root,) = tracer.finished_roots()
    events = [e for e in root.events if e["name"] == "CertificateViolation"]
    assert events
    assert any(e["metric"] == "sigma2_dispatches" for e in events)
