"""Tests for repro.logic.clause."""

import pytest
from hypothesis import given

from repro.logic.atoms import Literal
from repro.logic.clause import Clause

from conftest import clauses


class TestClassification:
    def test_fact(self):
        clause = Clause.fact("a", "b")
        assert clause.is_fact and not clause.is_integrity

    def test_integrity(self):
        clause = Clause.integrity(["a"], ["b"])
        assert clause.is_integrity and not clause.is_positive

    def test_positive(self):
        assert Clause.rule(["a"], ["b"]).is_positive
        assert not Clause.rule(["a"], ["b"], ["c"]).is_positive

    def test_horn_vs_definite(self):
        assert Clause.rule(["a"], ["b"]).is_definite
        assert Clause.integrity(["b"]).is_horn
        assert not Clause.integrity(["b"]).is_definite
        assert not Clause.rule(["a", "b"]).is_horn

    def test_disjunctive(self):
        assert Clause.fact("a", "b").is_disjunctive
        assert not Clause.fact("a").is_disjunctive

    def test_atoms_union(self):
        clause = Clause.rule(["a"], ["b"], ["c"])
        assert clause.atoms == {"a", "b", "c"}

    def test_tautology_head_meets_positive_body(self):
        assert Clause.rule(["a"], ["a"]).is_tautology()
        assert not Clause.rule(["a"], [], ["a"]).is_tautology()


class TestSatisfaction:
    def test_fact_needs_some_head_atom(self):
        clause = Clause.fact("a", "b")
        assert clause.satisfied_by({"a"})
        assert clause.satisfied_by({"b", "c"})
        assert not clause.satisfied_by({"c"})

    def test_rule_fires_on_true_body(self):
        clause = Clause.rule(["h"], ["b"])
        assert not clause.satisfied_by({"b"})
        assert clause.satisfied_by({"b", "h"})
        assert clause.satisfied_by(set())  # body false

    def test_negative_body_blocks_firing(self):
        clause = Clause.rule(["h"], ["b"], ["c"])
        assert clause.satisfied_by({"b", "c"})  # not c is false
        assert not clause.satisfied_by({"b"})

    def test_integrity_clause_excludes_body(self):
        clause = Clause.integrity(["a", "b"])
        assert clause.satisfied_by({"a"})
        assert not clause.satisfied_by({"a", "b"})

    def test_empty_clause_is_unsatisfiable(self):
        assert not Clause().satisfied_by(set())
        assert not Clause().satisfied_by({"a"})

    @given(clauses())
    def test_classical_literals_agree_with_satisfaction(self, clause):
        """The classical-disjunction reading matches satisfied_by."""
        import itertools

        atoms = sorted(clause.atoms)
        for bits in itertools.product([False, True], repeat=len(atoms)):
            model = {a for a, bit in zip(atoms, bits) if bit}
            classical = any(
                (l.atom in model) == l.positive
                for l in clause.to_classical_literals()
            )
            assert classical == clause.satisfied_by(model)


class TestConstructionAndRendering:
    def test_duplicates_collapse(self):
        assert Clause.fact("a", "a") == Clause.fact("a")

    def test_equality_is_structural(self):
        assert Clause.rule(["a"], ["b"]) == Clause(
            frozenset(["a"]), frozenset(["b"])
        )

    def test_str_roundtrips_through_parser(self):
        from repro.logic.parser import parse_clause

        for clause in [
            Clause.fact("a", "b"),
            Clause.rule(["h"], ["b"], ["c"]),
            Clause.integrity(["a", "b"]),
            Clause.fact("a"),
        ]:
            assert parse_clause(str(clause)) == clause

    def test_ordering_is_total_on_strings(self):
        first, second = sorted([Clause.fact("b"), Clause.fact("a")])
        assert str(first) < str(second)

    def test_to_formula_matches_satisfaction(self):
        clause = Clause.rule(["h"], ["b"], ["c"])
        formula = clause.to_formula()
        for model in [set(), {"b"}, {"b", "h"}, {"b", "c"}, {"h"}]:
            assert formula.evaluate(model) == clause.satisfied_by(model)
