"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.ddb"
    path.write_text("a | b.\nc :- a.\n")
    return str(path)


class TestModelsCommand:
    def test_default_semantics(self, db_file, capsys):
        assert main(["models", db_file]) == 0
        out = capsys.readouterr().out
        assert "EGCWA selects 2 model(s)" in out
        assert "{a, c}" in out and "{b}" in out

    def test_alias_and_engine(self, db_file, capsys):
        assert main(["models", db_file, "-s", "stable",
                     "--engine", "brute"]) == 0
        assert "DSM" in capsys.readouterr().out

    def test_partitioned_semantics(self, db_file, capsys):
        assert main(["models", db_file, "-s", "ecwa",
                     "--p", "a,b", "--z", "c"]) == 0


class TestInferCommand:
    def test_inferred_returns_zero(self, db_file):
        assert main(["infer", db_file, "-q", "~a | ~b", "-s", "egcwa"]) == 0

    def test_not_inferred_returns_one(self, db_file):
        assert main(["infer", db_file, "-q", "~a | ~b", "-s", "gcwa"]) == 1

    def test_bad_semantics_returns_two(self, db_file):
        assert main(["infer", db_file, "-q", "a", "-s", "bogus"]) == 2

    def test_parse_error_returns_two(self, db_file):
        assert main(["infer", db_file, "-q", "a &"]) == 2


class TestSolveCommand:
    def test_sat(self, db_file, capsys):
        assert main(["solve", db_file]) == 0
        assert "SATISFIABLE" in capsys.readouterr().out

    def test_unsat(self, tmp_path, capsys):
        path = tmp_path / "bad.ddb"
        path.write_text("a. :- a.\n")
        assert main(["solve", str(path)]) == 1
        assert "UNSAT" in capsys.readouterr().out


class TestStratifyCommand:
    def test_stratified(self, tmp_path, capsys):
        path = tmp_path / "s.ddb"
        path.write_text("a. b :- not a.\n")
        assert main(["stratify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "S1" in out and "S2" in out

    def test_unstratified(self, tmp_path, capsys):
        path = tmp_path / "u.ddb"
        path.write_text("a :- not b. b :- not a.\n")
        assert main(["stratify", str(path)]) == 1


class TestTablesCommand:
    def test_claims_only(self, capsys):
        assert main(["tables", "--regime", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Pi2p-complete" in out

    def test_both_regimes(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out


class TestClosureCommand:
    def test_closures_printed(self, capsys, tmp_path):
        path = tmp_path / "c.ddb"
        path.write_text("a. a | b. c :- d.\n")
        assert main(["closure", str(path)]) == 0
        out = capsys.readouterr().out
        assert "WGCWA/DDR adds: not c, not d" in out
        assert "not b" in out  # GCWA negates b, WGCWA does not

    def test_rejects_negation(self, tmp_path, capsys):
        path = tmp_path / "n.ddb"
        path.write_text("a :- not b.\n")
        assert main(["closure", str(path)]) == 2


class TestGroundCommand:
    def test_grounds_program(self, tmp_path, capsys):
        path = tmp_path / "g.lp"
        path.write_text("e(a, b). r(X) :- e(X, Y).\n")
        assert main(["ground", str(path)]) == 0
        out = capsys.readouterr().out
        assert "r(a) :- e(a,b)." in out

    def test_unsafe_rule_errors(self, tmp_path):
        path = tmp_path / "u.lp"
        path.write_text("p(X).\n")
        assert main(["ground", str(path)]) == 2


def test_missing_file_returns_two():
    assert main(["solve", "/nonexistent/file.ddb"]) == 2
