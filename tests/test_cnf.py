"""Tests for repro.logic.cnf (naive CNF and Tseitin)."""

import itertools

from hypothesis import given

from repro.logic.atoms import Literal
from repro.logic.cnf import (
    cnf_atoms,
    database_to_cnf,
    formula_to_cnf_naive,
    tseitin,
)
from repro.logic.formula import And, Iff, Implies, Not, Or, Var
from repro.logic.parser import parse_database

from test_formula import formulas


def _cnf_evaluate(cnf, model) -> bool:
    return all(
        any((l.atom in model) == l.positive for l in clause)
        for clause in cnf
    )


class TestNaiveCnf:
    @given(formulas())
    def test_equivalent_to_input(self, formula):
        cnf = formula_to_cnf_naive(formula)
        atoms = sorted(formula.atoms())
        for bits in itertools.product([False, True], repeat=len(atoms)):
            model = {a for a, bit in zip(atoms, bits) if bit}
            assert _cnf_evaluate(cnf, model) == formula.evaluate(model)

    def test_valid_formula_gives_empty_cnf(self):
        assert formula_to_cnf_naive(Or(Var("a"), Not(Var("a")))) == []

    def test_unsat_formula_gives_empty_clause(self):
        cnf = formula_to_cnf_naive(And(Var("a"), Not(Var("a"))))
        assert frozenset() in cnf or not _cnf_evaluate(cnf, {"a"})


class TestTseitin:
    @given(formulas())
    def test_equisatisfiable_and_projection_preserving(self, formula):
        """Models of clauses + root projected onto the original atoms are
        exactly the models of the formula."""
        clauses, root, aux = tseitin(formula)
        original = sorted(formula.atoms())
        all_atoms = sorted(set(original) | aux | {root.atom})
        projections = set()
        for bits in itertools.product([False, True], repeat=len(all_atoms)):
            model = {a for a, bit in zip(all_atoms, bits) if bit}
            root_true = (root.atom in model) == root.positive
            if _cnf_evaluate(clauses, model) and root_true:
                projections.add(frozenset(model & set(original)))
        expected = set()
        for bits in itertools.product([False, True], repeat=len(original)):
            model = frozenset(
                a for a, bit in zip(original, bits) if bit
            )
            if formula.evaluate(model):
                expected.add(model)
        assert projections == expected

    @given(formulas())
    def test_negated_root_gives_complement(self, formula):
        clauses, root, aux = tseitin(formula)
        original = sorted(formula.atoms())
        all_atoms = sorted(set(original) | aux | {root.atom})
        projections = set()
        for bits in itertools.product([False, True], repeat=len(all_atoms)):
            model = {a for a, bit in zip(all_atoms, bits) if bit}
            root_false = (root.atom in model) != root.positive
            if _cnf_evaluate(clauses, model) and root_false:
                projections.add(frozenset(model & set(original)))
        for model in projections:
            assert not formula.evaluate(model)

    def test_avoid_prevents_collisions(self):
        formula = And(Var("p"), Var("q"))
        _clauses, _root, aux = tseitin(formula, avoid=["__ts0", "__ts1"])
        assert not (aux & {"__ts0", "__ts1"})

    def test_linear_size(self):
        # Tseitin must not blow up the (a1&b1)|(a2&b2)|... pattern that
        # kills naive distribution.
        parts = [And(Var(f"a{i}"), Var(f"b{i}")) for i in range(12)]
        clauses, _root, _aux = tseitin(Or(*parts))
        assert len(clauses) < 100


class TestDatabaseCnf:
    def test_database_to_cnf_matches_models(self):
        db = parse_database("a | b. c :- a, not d.")
        cnf = database_to_cnf(db)
        atoms = sorted(db.vocabulary)
        for bits in itertools.product([False, True], repeat=len(atoms)):
            model = {a for a, bit in zip(atoms, bits) if bit}
            assert _cnf_evaluate(cnf, model) == db.is_model(model)

    def test_cnf_atoms(self):
        cnf = [frozenset({Literal("a"), Literal("b", False)})]
        assert cnf_atoms(cnf) == {"a", "b"}
