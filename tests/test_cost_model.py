"""Tests for the planner's calibrated cost model
(:mod:`repro.analysis.cost`).

Four prongs: monotonicity of every formula in the profile counts it
reads, exact predicted counts on hand-built Horn / HCF / stratified
databases, the never-worse-than-default selection rule, and a
hypothesis property that the chosen plan's predicted scalar is the
minimum over the candidate table (modulo the strict-improvement tie
rule).
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cost import (
    COST_MODEL,
    DEFAULT_PROCEDURE,
    FF_REDUCIBLE,
    HCF_CLOSURE_PROCEDURE,
    HCF_PROCEDURE,
    HORN_COLLAPSE,
    HORN_PROCEDURE,
    KERNEL_PROCEDURE,
    KERNEL_SETUP,
    MM_REDUCIBLE,
    PERFECT_COLLAPSE,
    STRATIFIED_PROCEDURE,
)
from repro.analysis.fragment import FragmentAnalyzer
from repro.analysis.planner import FragmentPlanner
from repro.logic.parser import parse_database
from repro.semantics import get_semantics

ALL_METHODS = (
    "infers", "infers_literal", "infers_brave", "has_model", "model_set",
)


def profile(text: str):
    return FragmentAnalyzer().analyze(parse_database(text))


# ----------------------------------------------------------------------
# Monotonicity: no profile growth ever makes a query look cheaper
# ----------------------------------------------------------------------
GROWTH_FIELDS = (
    "atoms", "clauses", "disjunctive_clauses", "clauses_with_negation",
    "largest_scc", "strata",
)


@pytest.mark.parametrize("field", GROWTH_FIELDS)
@pytest.mark.parametrize("method", ALL_METHODS)
def test_default_estimate_monotone(field, method):
    base = profile("a | b. c :- a. c :- b. d :- not c.")
    for semantics in ("gcwa", "egcwa", "circ", "icwa"):
        small = COST_MODEL.default_estimate(base, semantics, method)
        for delta in (1, 4, 16):
            grown = replace(
                base, **{field: getattr(base, field) + delta}
            )
            big = COST_MODEL.default_estimate(grown, semantics, method)
            assert big.scalar >= small.scalar, (field, semantics, method)
            assert big.np_calls >= small.np_calls


def test_growth_term_monotone_in_scc_and_clauses():
    base = profile("a | b. c :- a. c :- b.")
    g0 = COST_MODEL.growth(base)
    assert COST_MODEL.growth(replace(base, largest_scc=40)) > g0
    assert COST_MODEL.growth(replace(base, atoms=40)) > g0
    assert COST_MODEL.growth(replace(base, disjunctive_clauses=40)) > g0


# ----------------------------------------------------------------------
# Exact counts on hand-built databases
# ----------------------------------------------------------------------
def test_horn_candidate_is_all_zero():
    prof = profile("a. b :- a. :- a, c.")
    assert prof.is_horn
    for semantics in sorted(HORN_COLLAPSE):
        for method in ALL_METHODS:
            table = COST_MODEL.candidates(prof, semantics, method)
            horn = [
                c for c in table if c.procedure == HORN_PROCEDURE
            ]
            assert len(horn) == 1, (semantics, method)
            assert horn[0].np_calls == 0
            assert horn[0].sigma2_dispatches == 0
            assert horn[0].nodes == 0
            assert horn[0].scalar == 0


def test_stratified_perfect_candidate_is_all_zero():
    prof = profile("win1 :- not win2. win2 :- not win3. win3.")
    assert prof.fragment == "stratified-normal"
    for semantics in sorted(PERFECT_COLLAPSE):
        table = COST_MODEL.candidates(prof, semantics, "infers")
        strat = [
            c for c in table if c.procedure == STRATIFIED_PROCEDURE
        ]
        assert len(strat) == 1, semantics
        assert strat[0].scalar == 0
    # GCWA-family semantics read negation classically: no candidate.
    for semantics in sorted(FF_REDUCIBLE):
        table = COST_MODEL.candidates(prof, semantics, "infers")
        assert all(
            c.procedure != STRATIFIED_PROCEDURE for c in table
        ), semantics


def test_hcf_exact_counts_small_db():
    """3 atoms, 1 disjunctive clause, singleton SCCs: G = (3+1+1)//8 = 0,
    so S = 3, F = 2, FF = 3*3+1 = 10, FF0 = 3*2+1 = 7."""
    prof = profile("a | b. c :- a. c :- b.")
    assert COST_MODEL.growth(prof) == 0
    assert COST_MODEL.sigma2_search_np(prof) == 3
    assert COST_MODEL.founded_search_np(prof) == 2
    assert COST_MODEL.ff_closure_np(prof) == 10
    assert COST_MODEL.ff_closure_np(prof, founded=True) == 7
    assert COST_MODEL.enumeration_nodes(prof) == 4  # 2^(1+1)

    # MM family, formula inference: founded search vs one Σ₂ᵖ dispatch
    # (the kernel candidate rides along since PR 8).
    default, hcf, kernel = COST_MODEL.candidates(prof, "egcwa", "infers")
    assert default.procedure == DEFAULT_PROCEDURE
    assert (default.np_calls, default.sigma2_dispatches) == (3, 1)
    assert hcf.procedure == HCF_PROCEDURE
    assert (hcf.np_calls, hcf.sigma2_dispatches) == (2, 0)
    assert kernel.procedure == KERNEL_PROCEDURE
    assert (kernel.np_calls, kernel.sigma2_dispatches) == (0, 0)
    assert kernel.nodes == KERNEL_SETUP + 2 ** 4  # minimal-only sweep

    # GCWA formula inference: per-atom Σ₂ᵖ closure vs founded closure.
    default, closure, kernel = COST_MODEL.candidates(prof, "gcwa", "infers")
    assert (default.np_calls, default.sigma2_dispatches) == (10, 3)
    assert closure.procedure == HCF_CLOSURE_PROCEDURE
    assert (closure.np_calls, closure.sigma2_dispatches) == (7, 0)
    assert kernel.nodes == KERNEL_SETUP + 2 ** 4 + 2 ** 4  # + full sweep

    # GCWA literal: single-dispatch reduction on both sides.
    default, founded, kernel = COST_MODEL.candidates(
        prof, "gcwa", "infers_literal"
    )
    assert (default.np_calls, default.sigma2_dispatches) == (3, 1)
    assert (founded.np_calls, founded.sigma2_dispatches) == (2, 0)
    # Never-worse rule keeps the founded literal reduction in charge:
    # the kernel's setup constant prices it above one founded search.
    assert founded.scalar < kernel.scalar


def test_strata_term_prices_stratified_iteration():
    two = profile("a. b :- not a.")
    deep = replace(two, strata=5)
    shallow_np = COST_MODEL.default_estimate(two, "icwa", "infers").np_calls
    deep_np = COST_MODEL.default_estimate(deep, "icwa", "infers").np_calls
    assert deep_np == shallow_np + (5 - two.strata)


# ----------------------------------------------------------------------
# Never-worse-than-default rule
# ----------------------------------------------------------------------
def test_specialized_candidate_requires_strict_improvement():
    prof = profile("a | b. c :- a. c :- b.")
    chosen, table = COST_MODEL.choose(prof, "egcwa", "infers")
    assert chosen.procedure == HCF_PROCEDURE
    assert chosen.scalar < table[0].scalar
    # Inflate the fragment until the founded search matches the default
    # dispatch's scalar: 2 + G >= 3 + G + 2 never holds, so force a tie
    # artificially through a profile where the default has no dispatch
    # (perf has none and gains no Σ₂ᵖ weight).
    chosen_perf, table_perf = COST_MODEL.choose(prof, "perf", "infers")
    default_perf = table_perf[0]
    hcf_perf = next(
        c for c in table_perf if c.procedure == HCF_PROCEDURE
    )
    if hcf_perf.scalar < default_perf.scalar:
        assert chosen_perf.procedure == HCF_PROCEDURE
    else:
        assert chosen_perf.procedure == DEFAULT_PROCEDURE


def test_ties_fall_back_to_default():
    """When a specialized estimate does not strictly beat the default,
    the planner must stay on the table procedure."""
    prof = profile("a | b. c :- a. c :- b.")
    model = COST_MODEL

    class Pessimist(type(model)):
        def founded_search_np(self, profile):
            # Founded searches priced exactly at the default dispatch's
            # scalar: no strict improvement anywhere.
            return model.sigma2_search_np(profile) + 2.0

        def kernel_nodes(self, profile, semantics, method):
            # Price the kernel out so the founded tie is what decides.
            return 1e9

    chosen, table = Pessimist().choose(prof, "egcwa", "infers")
    specialized = next(
        c for c in table if c.procedure == HCF_PROCEDURE
    )
    assert specialized.scalar == table[0].scalar
    assert chosen.procedure == DEFAULT_PROCEDURE


def test_non_default_parameterization_disables_fast_paths():
    prof = profile("a. b :- a.")
    chosen, table = COST_MODEL.choose(
        prof, "ecwa", "infers", default_parameterization=False
    )
    assert chosen.procedure == DEFAULT_PROCEDURE
    assert len(table) == 1


def test_planner_never_chooses_above_default():
    """End-to-end: across fragments × semantics × methods, the chosen
    plan's predicted scalar never exceeds the default candidate's."""
    planner = FragmentPlanner()
    corpora = (
        "a. b :- a.",
        "a | b. c :- a. c :- b.",
        "a | b. c :- a. c :- b. c :- c.",
        "a | b. a :- b. b :- a.",
        "win1 :- not win2. win2.",
        "a. b | c :- not a.",
        "x :- not y. y :- not x.",
    )
    for text in corpora:
        prof = profile(text)
        for semantics in ("gcwa", "ccwa", "egcwa", "circ", "icwa",
                          "perf", "dsm", "cwa", "ddr", "pdsm"):
            for method in ALL_METHODS:
                plan = planner.plan(
                    prof, get_semantics(semantics), method
                )
                default = plan.candidates[0]
                chosen = next(
                    c for c in plan.candidates
                    if c.procedure == plan.procedure
                )
                assert chosen.scalar <= default.scalar, (
                    text, semantics, method,
                )


# ----------------------------------------------------------------------
# Hypothesis property: the chosen candidate minimizes the scalar
# ----------------------------------------------------------------------
@st.composite
def profiles(draw):
    atoms = draw(st.integers(min_value=1, max_value=60))
    clauses = draw(st.integers(min_value=1, max_value=80))
    disjunctive = draw(st.integers(min_value=0, max_value=clauses))
    negated = draw(st.integers(min_value=0, max_value=clauses))
    largest_scc = draw(st.integers(min_value=1, max_value=atoms))
    strata = draw(st.integers(min_value=0, max_value=6))
    is_horn = draw(st.booleans()) and disjunctive == 0
    base = profile("a | b. c :- a. c :- b.")
    return replace(
        base,
        atoms=atoms,
        clauses=clauses,
        disjunctive_clauses=disjunctive,
        clauses_with_negation=negated,
        largest_scc=largest_scc,
        strata=strata,
        is_stratified=strata > 0,
        is_horn=is_horn,
        negation_free=negated == 0,
        head_cycle_free=draw(st.booleans()),
        positive_acyclic=largest_scc == 1 and draw(st.booleans()),
        max_head_width=1 if is_horn else 2,
        is_positive=draw(st.booleans()) and negated == 0,
    )


@given(
    prof=profiles(),
    semantics=st.sampled_from(
        sorted(HORN_COLLAPSE | MM_REDUCIBLE | FF_REDUCIBLE | {"pdsm"})
    ),
    method=st.sampled_from(ALL_METHODS),
)
@settings(max_examples=200, deadline=None)
def test_chosen_cost_is_minimum_over_candidates(prof, semantics, method):
    chosen, table = COST_MODEL.choose(prof, semantics, method)
    assert table[0].procedure == DEFAULT_PROCEDURE
    minimum = min(c.scalar for c in table)
    if chosen.procedure == DEFAULT_PROCEDURE:
        # Default wins outright or via the strict-improvement tie rule.
        assert table[0].scalar <= minimum or any(
            c.scalar == table[0].scalar for c in table
        )
        assert minimum >= min(table[0].scalar, minimum)
        assert chosen.scalar == table[0].scalar
        assert minimum == chosen.scalar or minimum < chosen.scalar
        if minimum < chosen.scalar:
            # Only a non-strict improvement was available.
            assert not any(
                c.scalar < table[0].scalar for c in table[1:]
            )
    else:
        assert chosen.scalar == minimum
        assert chosen.scalar < table[0].scalar
