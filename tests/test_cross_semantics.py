"""Cross-semantics relationships the paper states or relies on.

Each test is one of the ``≡`` / ``⊆`` facts from the paper (Section 1-5),
verified over random databases with two *independently implemented*
semantics engines.
"""

from hypothesis import given

from repro.logic.parser import parse_database
from repro.models.enumeration import minimal_models_brute
from repro.semantics import get_semantics

from conftest import databases, positive_databases


@given(positive_databases(max_clauses=4))
def test_egcwa_equals_ecwa_with_empty_qz(db):
    """EGCWA results from ECWA if Q = Z = ∅ (paper, Section 3.3)."""
    assert get_semantics("egcwa").model_set(db) == get_semantics(
        "ecwa", p=sorted(db.vocabulary)
    ).model_set(db)


@given(databases(max_clauses=4))
def test_gcwa_equals_ccwa_with_empty_qz(db):
    """GCWA coincides with CCWA for Q = Z = ∅ (paper, Section 3.1)."""
    assert get_semantics("gcwa").model_set(db) == get_semantics(
        "ccwa", p=sorted(db.vocabulary)
    ).model_set(db)


@given(databases(max_clauses=4))
def test_circ_equals_ecwa(db):
    """CIRC_{P;Z}(DB) = ECWA_{P;Z}(DB) propositionally (paper, 3.3)."""
    atoms = sorted(db.vocabulary)
    p, z = atoms[:3], atoms[4:5]
    assert get_semantics("circ", p=p, z=z).model_set(db) == get_semantics(
        "ecwa", p=p, z=z
    ).model_set(db)


@given(positive_databases(max_clauses=4))
def test_perf_equals_minimal_models_on_positive(db):
    """On positive databases PERF selects exactly MM(DB)."""
    assert get_semantics("perf").model_set(db) == frozenset(
        minimal_models_brute(db)
    )


@given(positive_databases(max_clauses=4))
def test_dsm_equals_minimal_models_on_positive(db):
    """If DB ⊆ C+ then DSM(DB) = MM(DB) (paper, Section 5.2)."""
    assert get_semantics("dsm").model_set(db) == frozenset(
        minimal_models_brute(db)
    )


@given(positive_databases(max_clauses=4))
def test_gcwa_models_sandwich(db):
    """MM(DB) ⊆ GCWA(DB) ⊆ M(DB), and GCWA ⊆ DDR models (WGCWA is
    weaker: it negates fewer atoms... the inclusion goes GCWA ⊆ DDR)."""
    from repro.models.enumeration import all_models

    minimal = frozenset(minimal_models_brute(db))
    gcwa = get_semantics("gcwa").model_set(db)
    ddr = get_semantics("ddr").model_set(db)
    models = frozenset(all_models(db))
    assert minimal <= gcwa <= models
    assert gcwa <= ddr


@given(positive_databases(max_clauses=4))
def test_possible_models_include_minimal_models(db):
    """Every minimal model is a possible model (choose supported heads),
    so PWS inference is weaker than EGCWA inference."""
    pws = get_semantics("pws").model_set(db)
    assert frozenset(minimal_models_brute(db)) <= pws


@given(databases(allow_ic=False, max_clauses=4))
def test_perfect_models_are_stable_for_stratified(db):
    """For DSDBs, PERF(DB) ⊆ DSM(DB) (perfect models are stable)."""
    from repro.semantics.stratification import is_stratified

    if not is_stratified(db):
        return
    assert get_semantics("perf").model_set(db) <= get_semantics(
        "dsm"
    ).model_set(db)


@given(databases(allow_ic=False, max_clauses=4))
def test_icwa_equals_perf_on_stratified(db):
    """ICWA was introduced to capture PERF under stratified negation."""
    from repro.semantics.stratification import is_stratified

    if not is_stratified(db):
        return
    assert get_semantics("icwa").model_set(db) == get_semantics(
        "perf"
    ).model_set(db)


@given(databases(max_clauses=3))
def test_total_pdsm_are_dsm(db):
    """PDSM restricted to total interpretations is DSM."""
    total = {
        m.to_total()
        for m in get_semantics("pdsm").model_set(db)
        if m.is_total
    }
    assert total == set(get_semantics("dsm").model_set(db))


def test_all_semantics_agree_on_definite_databases():
    """On a definite (Horn, consistent) database every semantics selects
    model sets that all contain the least model, and the closure
    semantics all infer exactly the least model's positive atoms."""
    db = parse_database("a. b :- a. c :- d.")
    least = frozenset({"a", "b"})
    for name in ["gcwa", "egcwa", "ecwa", "circ", "ddr", "pws", "perf",
                 "icwa", "dsm"]:
        semantics = get_semantics(name)
        models = semantics.model_set(db)
        assert least in models, name
        for atom in ("a", "b"):
            assert semantics.infers_literal(db, atom), (name, atom)
        for atom in ("c", "d"):
            assert semantics.infers_literal(db, "not " + atom), (name, atom)
