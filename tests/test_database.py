"""Tests for repro.logic.database."""

import pytest

from repro.errors import PartitionError
from repro.logic.clause import Clause
from repro.logic.database import DisjunctiveDatabase, database
from repro.logic.parser import parse_database


class TestConstruction:
    def test_vocabulary_defaults_to_occurring_atoms(self):
        db = database(Clause.fact("a", "b"), Clause.rule(["c"], ["a"]))
        assert db.vocabulary == {"a", "b", "c"}

    def test_explicit_vocabulary_may_be_wider(self):
        db = DisjunctiveDatabase([Clause.fact("a")], ["a", "b"])
        assert db.vocabulary == {"a", "b"}

    def test_vocabulary_must_cover_clauses(self):
        with pytest.raises(PartitionError):
            DisjunctiveDatabase([Clause.fact("a")], ["b"])

    def test_duplicate_clauses_collapse(self):
        db = database(Clause.fact("a"), Clause.fact("a"))
        assert len(db) == 1

    def test_iteration_is_sorted_and_deterministic(self):
        db = database(Clause.fact("b"), Clause.fact("a"))
        assert [str(c) for c in db] == ["a.", "b."]

    def test_membership(self):
        db = database(Clause.fact("a"))
        assert Clause.fact("a") in db
        assert Clause.fact("b") not in db

    def test_equality_and_hash(self):
        db1 = database(Clause.fact("a"))
        db2 = DisjunctiveDatabase([Clause.fact("a")])
        assert db1 == db2 and hash(db1) == hash(db2)
        assert db1 != db1.with_vocabulary(["x"])


class TestClassification:
    def test_positive_regime(self):
        assert parse_database("a | b. c :- a.").is_positive

    def test_integrity_clause_breaks_positive(self):
        db = parse_database("a | b. :- a, b.")
        assert not db.is_positive
        assert db.is_deductive
        assert db.has_integrity_clauses

    def test_negation_breaks_deductive(self):
        db = parse_database("a :- not b.")
        assert not db.is_deductive
        assert db.has_negation

    def test_horn_and_nondisjunctive(self):
        assert parse_database("a. b :- a.").is_horn
        assert parse_database("a :- not b.").is_normal_nondisjunctive
        assert not parse_database("a | b.").is_normal_nondisjunctive

    def test_integrity_and_proper_split(self):
        db = parse_database("a | b. :- a, b.")
        assert len(db.integrity_clauses) == 1
        assert len(db.proper_clauses) == 1


class TestSemanticsHelpers:
    def test_is_model(self, simple_db):
        assert simple_db.is_model({"a", "c"})
        assert not simple_db.is_model({"a"})  # c :- a violated
        assert not simple_db.is_model(set())  # a | b violated

    def test_to_formula_matches_is_model(self, simple_db):
        formula = simple_db.to_formula()
        import itertools

        atoms = sorted(simple_db.vocabulary)
        for bits in itertools.product([False, True], repeat=len(atoms)):
            model = {a for a, bit in zip(atoms, bits) if bit}
            assert formula.evaluate(model) == simple_db.is_model(model)


class TestFunctionalUpdates:
    def test_with_clauses_widens_vocabulary(self, simple_db):
        extended = simple_db.with_clauses([Clause.fact("z")])
        assert "z" in extended.vocabulary
        assert len(extended) == len(simple_db) + 1
        assert len(simple_db) == 2  # original untouched

    def test_restrict_to_occurring(self):
        db = DisjunctiveDatabase([Clause.fact("a")], ["a", "b"])
        assert db.restricted_to_occurring_atoms().vocabulary == {"a"}


class TestPartitions:
    def test_valid_partition(self, simple_db):
        p, q, z = simple_db.check_partition({"a"}, {"b"}, {"c"})
        assert (p, q, z) == ({"a"}, {"b"}, {"c"})

    def test_overlap_rejected(self, simple_db):
        with pytest.raises(PartitionError):
            simple_db.check_partition({"a"}, {"a", "b"}, {"c"})

    def test_uncovered_atom_rejected(self, simple_db):
        with pytest.raises(PartitionError):
            simple_db.check_partition({"a"}, {"b"}, set())

    def test_foreign_atom_rejected(self, simple_db):
        with pytest.raises(PartitionError):
            simple_db.check_partition({"a", "x"}, {"b"}, {"c"})


def test_stats_fields(simple_db):
    stats = simple_db.stats()
    assert stats["clauses"] == 2
    assert stats["atoms"] == 3
    assert stats["disjunctive"] == 1
    assert stats["integrity"] == 0
