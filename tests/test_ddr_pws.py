"""Tests for DDR (= WGCWA) and PWS (= PMS)."""

import pytest
from hypothesis import given

from repro.errors import NotPositiveError
from repro.logic.parser import parse_database, parse_formula
from repro.semantics import get_semantics
from repro.semantics.ddr import possibly_true_atoms
from repro.semantics.pws import (
    is_possible_model,
    possible_models_by_splits,
)

from conftest import databases


class TestPossiblyTrueAtoms:
    def test_facts_are_possibly_true(self):
        assert possibly_true_atoms(parse_database("a | b.")) == {"a", "b"}

    def test_propagation_through_bodies(self):
        db = parse_database("a | b. c :- a. d :- e.")
        assert possibly_true_atoms(db) == {"a", "b", "c"}

    def test_integrity_clauses_ignored(self):
        # Example 3.1's point: the fixpoint does not respect ICs.
        db = parse_database("a | b. :- a, b. c :- a, b.")
        assert "c" in possibly_true_atoms(db)

    def test_negation_rejected(self):
        with pytest.raises(NotPositiveError):
            possibly_true_atoms(parse_database("a :- not b."))

    def test_cyclic_support_not_derivable(self):
        db = parse_database("a :- b. b :- a.")
        assert possibly_true_atoms(db) == set()


class TestDdr:
    def test_example_31(self, example_31):
        """Paper Example 3.1: DDR(DB) does not infer ¬c."""
        ddr = get_semantics("ddr")
        assert not ddr.infers_literal(example_31, "not c")
        # but GCWA does (c is false in all minimal models).
        assert get_semantics("gcwa").infers_literal(example_31, "not c")

    def test_negative_literal_via_fixpoint(self):
        db = parse_database("a | b. c :- d.")
        ddr = get_semantics("ddr")
        assert ddr.infers_literal(db, "not c")
        assert ddr.infers_literal(db, "not d")
        assert not ddr.infers_literal(db, "not a")

    def test_model_set(self):
        db = parse_database("a | b. c :- d.")
        models = {frozenset(m) for m in get_semantics("ddr").model_set(db)}
        # all models avoiding the never-derivable c, d
        assert models == {
            frozenset({"a"}), frozenset({"b"}), frozenset({"a", "b"})
        }

    def test_formula_inference_weaker_than_egcwa(self):
        db = parse_database("a | b.")
        assert not get_semantics("ddr").infers(
            db, parse_formula("~a | ~b")
        )

    def test_rejects_negation(self, unstratified_db):
        with pytest.raises(NotPositiveError):
            get_semantics("ddr").infers_literal(unstratified_db, "not a")

    def test_has_model_with_ics(self):
        assert get_semantics("ddr").has_model(
            parse_database("a | b. :- a, b.")
        )
        assert not get_semantics("ddr").has_model(
            parse_database("a. :- a.")
        )

    @given(databases(allow_neg=False, max_clauses=4))
    def test_oracle_matches_brute(self, db):
        formula = parse_formula("~a | b")
        oracle = get_semantics("ddr").infers(db, formula)
        brute = get_semantics("ddr", engine="brute").infers(db, formula)
        assert oracle == brute


class TestPossibleModels:
    def test_split_definition_on_simple_db(self, simple_db):
        models = {
            frozenset(m) for m in possible_models_by_splits(simple_db)
        }
        assert models == {
            frozenset({"a", "c"}),
            frozenset({"b"}),
            frozenset({"a", "b", "c"}),
        }

    def test_polynomial_check_matches_split_definition(self, simple_db):
        from repro.models.enumeration import all_models

        split_models = possible_models_by_splits(simple_db)
        for model in all_models(simple_db):
            assert is_possible_model(simple_db, model) == (
                model in split_models
            )

    @given(databases(allow_neg=False, max_clauses=4))
    def test_polynomial_check_matches_splits_universally(self, db):
        from repro.logic.interpretation import all_interpretations

        split_models = possible_models_by_splits(db)
        for interpretation in all_interpretations(db.vocabulary):
            assert is_possible_model(db, interpretation) == (
                interpretation in split_models
            )

    def test_unsupported_models_are_not_possible(self):
        # {a, b} is a classical model of {a|b.} but b cannot be derived
        # together with a... actually both can via the full split; the
        # non-possible one needs an unsupported atom:
        db = parse_database("a. b :- c.")
        assert not is_possible_model(db, frozenset({"a", "b"}))
        assert is_possible_model(db, frozenset({"a"}))


class TestPws:
    def test_pws_differs_from_ddr(self, simple_db):
        """{b, c} is a DDR model but not a possible model (c unsupported)."""
        ddr_models = get_semantics("ddr").model_set(simple_db)
        pws_models = get_semantics("pws").model_set(simple_db)
        assert frozenset({"b", "c"}) in {frozenset(m) for m in ddr_models}
        assert frozenset({"b", "c"}) not in {
            frozenset(m) for m in pws_models
        }

    def test_pws_negative_literal_fast_path(self):
        db = parse_database("a | b. c :- d.")
        pws = get_semantics("pws")
        assert pws.infers_literal(db, "not c")
        assert not pws.infers_literal(db, "not b")

    def test_agrees_with_ddr_on_negative_literals_without_ics(self):
        """Both closures negate exactly the non-possibly-true atoms."""
        for seed in range(5):
            from conftest import random_small_db

            db = random_small_db(seed, allow_neg=False, allow_ic=False)
            for atom in sorted(db.vocabulary):
                assert get_semantics("pws").infers_literal(
                    db, "not " + atom
                ) == get_semantics("ddr").infers_literal(db, "not " + atom)

    def test_has_model_with_ics(self):
        assert not get_semantics("pws").has_model(
            parse_database("a. :- a.")
        )
        assert get_semantics("pws").has_model(
            parse_database("a | b. :- a, b.")
        )

    def test_rejects_negation(self, unstratified_db):
        with pytest.raises(NotPositiveError):
            get_semantics("pws").model_set(unstratified_db)

    @given(databases(allow_neg=False, max_clauses=4))
    def test_oracle_matches_brute(self, db):
        formula = parse_formula("a | ~b")
        oracle = get_semantics("pws").infers(db, formula)
        brute = get_semantics("pws", engine="brute").infers(db, formula)
        assert oracle == brute

    @given(databases(allow_neg=False, max_clauses=4))
    def test_model_sets_match(self, db):
        assert get_semantics("pws").model_set(db) == get_semantics(
            "pws", engine="brute"
        ).model_set(db)
