"""Unit tests for connected-component decomposition.

Covers the clause-graph partition itself, the ``MM`` / ``MM(;P;Z)``
product laws against the undecomposed enumerators, free atoms as
singleton components, and the node-count asymptotics that make
decomposition worthwhile (work grows with the largest component, not the
whole vocabulary).
"""

from __future__ import annotations

import pytest

from repro.logic.interpretation import Interpretation
from repro.logic.parser import parse_database
from repro.models.enumeration import (
    minimal_models_brute,
    pz_minimal_models_brute,
)
from repro.runtime.budget import Budget, budget_scope
from repro.sat.decompose import (
    connected_components,
    decompose,
    product_interpretations,
)
from repro.sat.minimal import MinimalModelSolver, PZMinimalModelSolver
from repro.workloads.families import disjoint_components, disjunctive_chain


class TestConnectedComponents:
    def test_disjoint_families_split_exactly(self):
        db = disjoint_components(3, component_size=2)
        components = connected_components(db)
        assert len(components) == 3
        assert all(len(c) == 4 for c in components)  # a1,b1,a2,b2 each
        prefixes = sorted(min(c)[:3] for c in components)
        assert prefixes == ["c1_", "c2_", "c3_"]

    def test_components_partition_vocabulary(self):
        db = disjoint_components(4, component_size=3)
        components = connected_components(db)
        union = set()
        for component in components:
            assert not union & component, "components overlap"
            union |= component
        assert union == set(db.vocabulary)

    def test_free_atoms_are_singletons(self):
        db = parse_database("a | b.", vocabulary=["a", "b", "x", "y"])
        components = connected_components(db)
        assert frozenset({"a", "b"}) in components
        assert frozenset({"x"}) in components
        assert frozenset({"y"}) in components

    def test_connected_database_does_not_decompose(self):
        assert decompose(disjunctive_chain(4)) is None

    def test_empty_database_does_not_decompose(self):
        assert decompose(parse_database("")) is None

    def test_parts_carry_component_vocabularies(self):
        db = disjoint_components(2, component_size=2)
        parts = decompose(db)
        assert parts is not None
        assert sorted(min(p.vocabulary) for p in parts) == [
            "c1_a1",
            "c2_a1",
        ]
        for part in parts:
            for clause in part.clauses:
                assert clause.atoms <= part.vocabulary


class TestProductLaw:
    @pytest.mark.parametrize("copies,size", [(2, 2), (3, 2), (2, 3)])
    def test_mm_products_match_monolithic(self, copies, size):
        db = disjoint_components(copies, component_size=size)
        decomposed = minimal_models_brute(db, decompose=True)
        monolithic = minimal_models_brute(db, decompose=False)
        assert decomposed == monolithic  # same list: set AND order

    def test_mm_product_counts_multiply(self):
        base = len(minimal_models_brute(disjunctive_chain(3)))
        db = disjoint_components(3, component_size=3)
        assert len(minimal_models_brute(db)) == base**3

    @pytest.mark.parametrize("copies", [2, 3])
    def test_pz_products_match_monolithic(self, copies):
        db = disjoint_components(copies, component_size=2)
        atoms = sorted(db.vocabulary)
        p = frozenset(atoms[::2])
        z = frozenset(atoms[1::4])
        decomposed = pz_minimal_models_brute(db, p, z, decompose=True)
        monolithic = pz_minimal_models_brute(db, p, z, decompose=False)
        assert decomposed == monolithic

    def test_solver_enumeration_decomposes_equally(self):
        db = disjoint_components(2, component_size=3)
        with MinimalModelSolver(db) as solver:
            from_solver = set(solver.iter_minimal_models())
        assert from_solver == set(minimal_models_brute(db, decompose=False))

    def test_pz_solver_enumeration_decomposes_equally(self):
        db = disjoint_components(2, component_size=2)
        atoms = sorted(db.vocabulary)
        p, z = frozenset(atoms[:4]), frozenset(atoms[6:])
        with PZMinimalModelSolver(db, p, z) as solver:
            from_solver = set(solver.iter_minimal_models())
        assert from_solver == set(
            pz_minimal_models_brute(db, p, z, decompose=False)
        )

    def test_inconsistent_component_kills_product(self):
        db = parse_database(":- a. a. x | y.")
        assert minimal_models_brute(db) == []

    def test_product_interpretations_empty_part(self):
        parts = [[Interpretation({"a"})], []]
        assert list(product_interpretations(parts)) == []

    def test_product_interpretations_unions(self):
        parts = [
            [Interpretation(set()), Interpretation({"a"})],
            [Interpretation({"b"})],
        ]
        assert list(product_interpretations(parts)) == [
            Interpretation({"b"}),
            Interpretation({"a", "b"}),
        ]


class TestAsymptotics:
    def _nodes(self, db, decompose_flag):
        from repro.engine.cache import ENGINE_CACHE

        ENGINE_CACHE.clear()
        with budget_scope(Budget()) as scope:
            minimal_models_brute(db, decompose=decompose_flag)
        return scope.nodes

    def test_decomposed_nodes_track_largest_component(self):
        # Adding a copy multiplies monolithic work by 2^size but only
        # adds one more component sweep to the decomposed enumerator.
        two = self._nodes(disjoint_components(2, 3), True)
        three = self._nodes(disjoint_components(3, 3), True)
        assert three < two * 2, "decomposed growth is additive"
        mono_two = self._nodes(disjoint_components(2, 3), False)
        mono_three = self._nodes(disjoint_components(3, 3), False)
        assert mono_three > mono_two * 16, "monolithic growth is 2^size"

    def test_decomposition_wins_by_orders_of_magnitude(self):
        db = disjoint_components(3, component_size=3)
        assert self._nodes(db, False) > 100 * self._nodes(db, True)
