"""Differential test harness: planned vs. cached vs. oracle vs. fresh
vs. brute, plus the opposite-representation kernel leg.

Seeded random databases from :mod:`repro.workloads.random_db`, one batch
per syntactic regime, are cross-checked across every registered paper
semantics applicable to that regime: the memoizing ``cached`` engine,
the pooled incremental ``oracle`` decision procedures, the identical
procedures on throwaway ``fresh`` solvers, the fragment-dispatching
``planned`` engine (Horn unit propagation / head-cycle-free foundedness
fast paths where the profile allows, oracle fallback elsewhere), the
``kernel`` leg (the brute enumerator re-run on the opposite
interpretation representation — bitset masks vs. pure frozensets), and
the ``brute`` ground-truth enumerator must agree on ``model_set``,
``infers`` (on a seeded random query formula), ``infers_literal`` (both
polarities) and ``has_model``.

The generators are deterministic given a seed (see
``test_random_db_determinism.py``), so any disagreement reproduces
byte-identically from the failing parameter id.  The harness quantifies
over more than 200 databases in total (asserted by
``test_coverage_floor``).
"""

from __future__ import annotations

import pytest

from repro.adversary import DEFAULT_CORPUS_PATH, applicable_semantics
from repro.adversary.corpus import corpus_databases
from repro.engine import differential_stack
from repro.engine.cache import ENGINE_CACHE
from repro.logic.atoms import Literal
from repro.semantics import get_semantics
from repro.workloads import (
    random_deductive_db,
    random_normal_db,
    random_positive_db,
    random_query_formula,
    random_stratified_db,
)

#: How many seeded databases each regime contributes.
COUNTS = {
    "positive": 60,
    "deductive": 60,
    "stratified": 50,
    "normal": 50,
}

#: Which registered semantics are defined on which regime.  ``ddr`` and
#: ``pws`` reject negation, ``perf`` rejects integrity clauses, and
#: ``icwa`` requires a stratification (normal databases may lack one).
SEMANTICS_FOR = {
    "positive": [
        "gcwa", "ccwa", "egcwa", "ecwa", "circ", "ddr", "pws", "perf",
        "icwa", "dsm", "pdsm",
    ],
    "deductive": [
        "gcwa", "ccwa", "egcwa", "ecwa", "circ", "ddr", "pws", "icwa",
        "dsm", "pdsm",
    ],
    "stratified": [
        "gcwa", "ccwa", "egcwa", "ecwa", "circ", "perf", "icwa", "dsm",
        "pdsm",
    ],
    "normal": ["gcwa", "ccwa", "egcwa", "ecwa", "circ", "dsm", "pdsm"],
}


def build_db(regime: str, seed: int):
    """The ``seed``-th database of a regime (small enough for brute)."""
    if regime == "positive":
        return random_positive_db(4, 4, seed=seed)
    if regime == "deductive":
        return random_deductive_db(4, 5, seed=seed)
    if regime == "stratified":
        return random_stratified_db(4, 5, seed=seed)
    if regime == "normal":
        return random_normal_db(4, 5, ic_fraction=0.15, seed=seed)
    raise ValueError(regime)


def engines(name: str):
    """(brute ground truth, pooled oracle, fresh-solver oracle,
    memoizing cached, fragment-planned, opposite-kernel brute)."""
    return differential_stack(name)


def check_agreement(db, names, query_seed: int = 0) -> None:
    """Assert six-engine agreement on every decision problem.

    ``oracle`` runs the decision procedures on pooled incremental
    solvers, ``fresh`` runs the identical procedures on throwaway
    per-query solvers — their agreement pins the solver-reuse layer
    (selector retraction, clause reclamation, recycling) to the
    fresh-solver ground truth on every database of the corpus.
    ``planned`` additionally pins the fragment fast paths (Horn least
    model, head-cycle-free foundedness) to the same ground truth on
    every database whose profile triggers them, and ``kernel``
    re-answers every probe on the opposite interpretation
    representation so the bitset and pure code paths stay equivalent.
    """
    query = random_query_formula(
        sorted(db.vocabulary), depth=2, seed=query_seed
    )
    some_atom = sorted(db.vocabulary)[0]
    literals = [Literal.pos(some_atom), Literal.neg(some_atom)]
    for name in names:
        brute, *others = engines(name)
        expected_models = brute.model_set(db)
        expected_infers = brute.infers(db, query)
        expected_literal = {
            literal: brute.infers_literal(db, literal)
            for literal in literals
        }
        expected_has_model = brute.has_model(db)
        for other in others:
            tag = (name, other.engine)
            assert other.model_set(db) == expected_models, (
                tag, "model_set",
            )
            assert other.infers(db, query) == expected_infers, (
                tag, "infers",
            )
            for literal in literals:
                assert (
                    other.infers_literal(db, literal)
                    == expected_literal[literal]
                ), (tag, "infers_literal", literal)
            assert other.has_model(db) == expected_has_model, (
                tag, "has_model",
            )


# ----------------------------------------------------------------------
# One test per (regime, seed): the failing database is the parameter id.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(COUNTS["positive"]))
def test_differential_positive(seed):
    db = build_db("positive", seed)
    check_agreement(db, SEMANTICS_FOR["positive"], query_seed=seed)


@pytest.mark.parametrize("seed", range(COUNTS["deductive"]))
def test_differential_deductive(seed):
    db = build_db("deductive", seed)
    check_agreement(db, SEMANTICS_FOR["deductive"], query_seed=seed)


@pytest.mark.parametrize("seed", range(COUNTS["stratified"]))
def test_differential_stratified(seed):
    db = build_db("stratified", seed)
    check_agreement(db, SEMANTICS_FOR["stratified"], query_seed=seed)


@pytest.mark.parametrize("seed", range(COUNTS["normal"]))
def test_differential_normal(seed):
    db = build_db("normal", seed)
    check_agreement(db, SEMANTICS_FOR["normal"], query_seed=seed)


# ----------------------------------------------------------------------
# The adversarial regression corpus: every witness the hunter ever
# minimized and folded in (tests/data/adversarial_corpus.json) is
# replayed across the full stack, so a bug class found once stays found.
# ----------------------------------------------------------------------
import os

_CORPUS_PATH = os.path.join(
    os.path.dirname(__file__), "data", "adversarial_corpus.json"
)
_CORPUS = corpus_databases(_CORPUS_PATH)


@pytest.mark.parametrize(
    "db", [c[1] for c in _CORPUS], ids=[c[0] for c in _CORPUS]
)
def test_differential_adversarial_corpus(db):
    names = [n for n in applicable_semantics(db) if n != "pdsm"]
    if len(db.vocabulary) <= 5:
        names = list(applicable_semantics(db))
    check_agreement(db, names, query_seed=0)


def test_corpus_default_path_matches():
    """The checked-in corpus is where the hunter folds survivors to."""
    assert DEFAULT_CORPUS_PATH.endswith(
        os.path.join("tests", "data", "adversarial_corpus.json")
    )


# ----------------------------------------------------------------------
# Planner calibration: predicted vs. actual NP calls on cold queries
# ----------------------------------------------------------------------
# The documented calibration contract for the cost model
# (src/repro/analysis/cost.py), measured on this 220-DB corpus:
#
# * core band  [0.25x, 4x]:  holds for >= 97% of cold planned queries
#   per regime (empirically >= 98.8%; the misses are a handful of
#   stratified databases whose oracle search backtracks harder than the
#   static profile predicts),
# * hard band  [0.1x, 10x]:  holds for *every* probe,
#
# where the ratio is (actual_np + 1) / (predicted_np + 1) — the same
# quantity the `repro_planner_np_ratio` histogram buckets.  Scope:
# formula inference, literal inference (the negative polarity — CCWA
# positive literals route through the full closure and are documented
# off-band in CostModel.default_estimate), and model existence for
# non-circumscriptive semantics (circ has_model and model_set are
# enumerative order-of-magnitude estimates, documented outside the
# band).  Every probed answer is simultaneously cross-checked against
# the oracle engine.
CALIBRATION_CORE_BAND = (0.25, 4.0)
CALIBRATION_HARD_BAND = (0.1, 10.0)
CALIBRATION_CORE_FLOOR = 0.97

#: Calibration skips semantics whose regime list excludes them plus the
#: documented off-band probes (see the banner comment above).
CALIBRATION_SEMANTICS = {
    regime: [n for n in names if n not in ("ddr", "pws", "pdsm")]
    for regime, names in SEMANTICS_FOR.items()
}


def _calibration_probes(db, name, query):
    negative = Literal.neg(sorted(db.vocabulary)[0])
    probes = [("infers", (query,)), ("infers_literal", (negative,))]
    if name != "circ":
        probes.append(("has_model", ()))
    return probes


@pytest.mark.parametrize("regime", sorted(COUNTS))
def test_planner_calibration(regime):
    from repro.obs.accounting import observe
    from repro.sat import clear_solver_pool

    in_band = 0
    total = 0
    misses = []
    for seed in range(COUNTS[regime]):
        db = build_db(regime, seed)
        query = random_query_formula(
            sorted(db.vocabulary), depth=2, seed=seed
        )
        for name in CALIBRATION_SEMANTICS[regime]:
            planned = get_semantics(name, engine="planned")
            oracle = get_semantics(name, engine="oracle")
            for method, args in _calibration_probes(db, name, query):
                # Cold start: every probe re-plans and re-solves, so
                # the observation prices the procedure, not the cache.
                ENGINE_CACHE.clear()
                clear_solver_pool()
                plan = planned.plan_for(db, method)
                with observe() as observation:
                    answer = getattr(planned, method)(db, *args)
                assert answer == getattr(oracle, method)(db, *args), (
                    regime, seed, name, method,
                )
                ratio = (observation.np_calls + 1.0) / (
                    plan.predicted_np_calls + 1.0
                )
                total += 1
                lo, hi = CALIBRATION_HARD_BAND
                assert lo <= ratio <= hi, (
                    regime, seed, name, method, plan.procedure, ratio,
                )
                lo, hi = CALIBRATION_CORE_BAND
                if lo <= ratio <= hi:
                    in_band += 1
                else:
                    misses.append((seed, name, method, round(ratio, 2)))
    assert in_band / total >= CALIBRATION_CORE_FLOOR, (
        f"{in_band}/{total} in band", misses,
    )


# ----------------------------------------------------------------------
# Meta checks
# ----------------------------------------------------------------------
def test_coverage_floor():
    """The harness quantifies over at least 200 distinct databases."""
    assert sum(COUNTS.values()) >= 200
    seen = set()
    for regime, count in COUNTS.items():
        for seed in range(count):
            seen.add(build_db(regime, seed))
    assert len(seen) >= 200  # regimes don't accidentally coincide


def test_cached_engine_actually_hits():
    """Re-running a differential batch is answered from the cache."""
    db = build_db("positive", 0)
    cached = get_semantics("egcwa", engine="cached")
    cached.model_set(db)
    before = ENGINE_CACHE.stats()["hits"]
    cached.model_set(db)
    assert ENGINE_CACHE.stats()["hits"] == before + 1


def test_partitioned_semantics_differential():
    """CCWA/ECWA with explicit non-trivial (P;Z) partitions also agree
    across all three engines (the partition is part of the cache key)."""
    for seed in range(10):
        db = random_positive_db(4, 4, seed=seed)
        atoms = sorted(db.vocabulary)
        p, z = atoms[:2], atoms[2:3]
        query = random_query_formula(atoms, depth=2, seed=seed)
        for name in ("ccwa", "ecwa", "circ"):
            brute = get_semantics(name, engine="brute", p=p, z=z)
            expected_models = brute.model_set(db)
            expected = brute.infers(db, query)
            for engine in ("oracle", "fresh", "cached"):
                other = get_semantics(name, engine=engine, p=p, z=z)
                assert other.model_set(db) == expected_models, engine
                assert other.infers(db, query) == expected, engine
