"""Tests for repro.logic.dimacs."""

import pytest

from repro.errors import ParseError
from repro.logic.atoms import Literal
from repro.logic.dimacs import from_dimacs, to_dimacs


def _cnf(*clauses):
    return [
        frozenset(Literal(atom, sign) for atom, sign in clause)
        for clause in clauses
    ]


class TestRoundTrip:
    def test_names_preserved(self):
        cnf = _cnf([("a", True), ("b", False)], [("b", True)])
        parsed, names = from_dimacs(to_dimacs(cnf))
        assert sorted(names.values()) == ["a", "b"]
        assert set(parsed) == set(cnf)

    def test_empty_cnf(self):
        parsed, _names = from_dimacs(to_dimacs([]))
        assert parsed == []

    def test_unnamed_variables_get_v_names(self):
        text = "p cnf 2 1\n1 -2 0\n"
        parsed, _names = from_dimacs(text)
        assert parsed == [frozenset({Literal("v1"), Literal("v2", False)})]


class TestErrors:
    def test_unterminated_clause(self):
        with pytest.raises(ParseError):
            from_dimacs("p cnf 1 1\n1")

    def test_bad_problem_line(self):
        with pytest.raises(ParseError):
            from_dimacs("p sat 1 1\n1 0\n")

    def test_clause_count_mismatch(self):
        with pytest.raises(ParseError):
            from_dimacs("p cnf 1 2\n1 0\n")

    def test_bad_token(self):
        with pytest.raises(ParseError):
            from_dimacs("p cnf 1 1\nx 0\n")

    def test_comments_ignored(self):
        parsed, _names = from_dimacs("c hello\np cnf 1 1\n1 0\n")
        assert len(parsed) == 1
