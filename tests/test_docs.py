"""Doc-sync tests: every model set quoted in docs/semantics_guide.md is
re-derived here, so the guide cannot silently drift from the code."""

import pytest

from repro import model_set, parse_database
from repro.errors import NotStratifiedError
from repro.semantics import get_semantics


def _models(db, name):
    return {frozenset(m) for m in model_set(db, name)}


class TestSection1PureDisjunction:
    def setup_method(self):
        self.db = parse_database("a | b.")

    def test_weak_family_keeps_both_true(self):
        for name in ("gcwa", "ddr", "pws"):
            assert _models(self.db, name) == {
                frozenset({"a"}), frozenset({"b"}), frozenset({"a", "b"})
            }, name

    def test_minimal_family_is_exclusive(self):
        for name in ("egcwa", "ecwa", "circ", "perf", "icwa", "dsm"):
            assert _models(self.db, name) == {
                frozenset({"a"}), frozenset({"b"})
            }, name


class TestSection2Support:
    def setup_method(self):
        self.db = parse_database("a | b. c :- a.")

    def test_ddr_keeps_unsupported_model(self):
        assert frozenset({"b", "c"}) in _models(self.db, "ddr")

    def test_pws_drops_unsupported_model(self):
        models = _models(self.db, "pws")
        assert frozenset({"b", "c"}) not in models
        assert frozenset({"a", "b", "c"}) in models

    def test_minimal_models(self):
        assert _models(self.db, "egcwa") == {
            frozenset({"b"}), frozenset({"a", "c"})
        }


class TestSection3Example31:
    def setup_method(self):
        self.db = parse_database("a | b. :- a, b. c :- a, b.")

    def test_ddr_keeps_c_possible(self):
        models = _models(self.db, "ddr")
        assert frozenset({"a", "c"}) in models
        assert frozenset({"b", "c"}) in models

    def test_others_exclude_c(self):
        for name in ("gcwa", "egcwa", "pws", "dsm"):
            assert _models(self.db, name) == {
                frozenset({"a"}), frozenset({"b"})
            }, name


class TestSection4Stratified:
    def setup_method(self):
        self.db = parse_database(
            "sale :- not expensive. expensive :- luxury."
        )

    def test_egcwa_keeps_unintended_model(self):
        assert _models(self.db, "egcwa") == {
            frozenset({"sale"}), frozenset({"expensive"})
        }

    def test_stratified_semantics_recover_intended_model(self):
        for name in ("perf", "icwa", "dsm"):
            assert _models(self.db, name) == {frozenset({"sale"})}, name


class TestSection5Unstratified:
    def setup_method(self):
        self.db = parse_database("a :- not b. b :- not a.")

    def test_dsm_two_models(self):
        assert _models(self.db, "dsm") == {
            frozenset({"a"}), frozenset({"b"})
        }

    def test_pdsm_adds_undefined_model(self):
        models = model_set(self.db, "pdsm")
        assert len(models) == 3
        assert any(m.undefined == {"a", "b"} for m in models)

    def test_perf_empty(self):
        assert _models(self.db, "perf") == set()

    def test_icwa_rejects(self):
        with pytest.raises(NotStratifiedError):
            model_set(self.db, "icwa")

    def test_odd_loop(self):
        odd = parse_database("a :- not a.")
        assert _models(odd, "dsm") == set()
        pdsm = model_set(odd, "pdsm")
        assert len(pdsm) == 1 and next(iter(pdsm)).undefined == {"a"}


class TestSection6Partitions:
    def test_floating_atom_buys_minimization(self):
        db = parse_database("a | z.")
        ecwa = get_semantics("ecwa", p=["a"], z=["z"])
        assert {frozenset(m) for m in ecwa.model_set(db)} == {
            frozenset({"z"})
        }
        ccwa = get_semantics("ccwa", p=["a"], z=["z"])
        assert ccwa.infers_literal(db, "not a")
        assert not get_semantics("gcwa").infers_literal(db, "not a")

    def test_fixed_atom_splits_cases(self):
        db = parse_database("a | q.")
        ecwa = get_semantics("ecwa", p=["a"], z=[])
        assert {frozenset(m) for m in ecwa.model_set(db)} == {
            frozenset({"q"}), frozenset({"a"})
        }


class TestSection7Closures:
    def test_closure_command_facts(self):
        from repro.semantics.state import (
            gcwa_closure_literals,
            wgcwa_closure_literals,
        )

        db = parse_database("a. a | b. c :- d.")
        assert wgcwa_closure_literals(db) == {"c", "d"}
        assert gcwa_closure_literals(db) == {"b", "c", "d"}

    def test_egcwa_closure_includes_singletons(self):
        from repro.semantics.state import egcwa_closure_clauses

        db = parse_database("a. a | b. c :- d.")
        closure = egcwa_closure_clauses(db, max_size=1)
        assert {frozenset({x}) for x in ("b", "c", "d")} <= closure
