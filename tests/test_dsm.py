"""Tests for the Disjunctive Stable Model semantics."""

import pytest
from hypothesis import given

from repro.logic.parser import parse_database, parse_formula
from repro.semantics import get_semantics
from repro.semantics.dsm import is_stable_model, is_stable_model_brute
from repro.workloads import win_move_cycle

from conftest import databases, positive_databases


class TestStableCheck:
    def test_positive_db_stable_equals_minimal(self, simple_db):
        assert is_stable_model(simple_db, frozenset({"b"}))
        assert is_stable_model(simple_db, frozenset({"a", "c"}))
        assert not is_stable_model(simple_db, frozenset({"a", "b", "c"}))

    def test_unsupported_negation(self):
        db = parse_database("a :- not a.")
        # No stable model: {} fails (reduct derives a), {a} fails
        # (reduct empty, {} smaller... reduct for {a} deletes the clause,
        # so minimal model is {} != {a}).
        assert not is_stable_model(db, frozenset())
        assert not is_stable_model(db, frozenset({"a"}))

    def test_even_loop_has_two_stable_models(self, unstratified_db):
        assert is_stable_model(unstratified_db, frozenset({"a"}))
        assert is_stable_model(unstratified_db, frozenset({"b"}))
        assert not is_stable_model(unstratified_db, frozenset({"a", "b"}))

    @given(databases(max_clauses=4))
    def test_fast_check_matches_brute(self, db):
        from repro.logic.interpretation import all_interpretations

        for model in all_interpretations(db.vocabulary):
            assert is_stable_model(db, model) == is_stable_model_brute(
                db, model
            )


class TestDsmSemantics:
    def test_model_sets(self, unstratified_db):
        models = get_semantics("dsm").model_set(unstratified_db)
        assert {frozenset(m) for m in models} == {
            frozenset({"a"}), frozenset({"b"})
        }

    def test_win_move_cycles(self):
        # Odd cycle: no stable model; even cycle: two.
        assert not get_semantics("dsm").has_model(win_move_cycle(3))
        assert len(get_semantics("dsm").model_set(win_move_cycle(2))) == 2

    def test_stratified_db_has_unique_stable_model_per_perfect(self):
        db = parse_database("a :- not b.")
        models = get_semantics("dsm").model_set(db)
        assert {frozenset(m) for m in models} == {frozenset({"a"})}

    def test_inference_is_brave_free_cautious(self, unstratified_db):
        dsm = get_semantics("dsm")
        assert dsm.infers(unstratified_db, parse_formula("a | b"))
        assert not dsm.infers_literal(unstratified_db, "a")

    def test_no_stable_models_entails_everything(self):
        db = parse_database("a :- not a.")
        assert get_semantics("dsm").infers(db, parse_formula("false"))

    def test_has_model_positive_trivial(self, simple_db):
        assert get_semantics("dsm").has_model(simple_db)

    @given(positive_databases(max_clauses=4))
    def test_positive_dsm_is_minimal_models(self, db):
        """Paper: if DB is positive then DSM(DB) = MM(DB)."""
        from repro.models.enumeration import minimal_models_brute

        assert get_semantics("dsm").model_set(db) == frozenset(
            minimal_models_brute(db)
        )

    @given(databases(max_clauses=4))
    def test_stable_models_are_minimal_models(self, db):
        """Paper: DSM(DB) ⊆ MM(DB)."""
        from repro.models.enumeration import minimal_models_brute

        minimal = frozenset(minimal_models_brute(db))
        assert get_semantics("dsm").model_set(db) <= minimal

    @given(databases(max_clauses=4))
    def test_oracle_matches_brute(self, db):
        formula = parse_formula("a | ~b")
        assert get_semantics("dsm").infers(db, formula) == get_semantics(
            "dsm", engine="brute"
        ).infers(db, formula)
        assert get_semantics("dsm").has_model(db) == get_semantics(
            "dsm", engine="brute"
        ).has_model(db)

    def test_perf_subset_of_dsm_on_stratified(self, stratified_db):
        """For stratified databases perfect models are stable."""
        perf = get_semantics("perf").model_set(stratified_db)
        dsm = get_semantics("dsm").model_set(stratified_db)
        assert perf <= dsm
