"""Tests for EGCWA, ECWA and circumscription (and their equivalences)."""

import pytest
from hypothesis import given

from repro.logic.parser import parse_database, parse_formula
from repro.models.enumeration import minimal_models_brute
from repro.semantics import get_semantics
from repro.semantics.circumscription import CircumscriptionChecker

from conftest import databases


class TestEgcwa:
    def test_model_set_is_minimal_models(self, simple_db):
        assert get_semantics("egcwa").model_set(simple_db) == frozenset(
            minimal_models_brute(simple_db)
        )

    def test_infers_exclusive_disjunction(self):
        db = parse_database("a | b.")
        egcwa = get_semantics("egcwa")
        assert egcwa.infers(db, parse_formula("~a | ~b"))
        assert not egcwa.infers_literal(db, "not a")

    def test_positive_db_always_has_model(self, simple_db):
        assert get_semantics("egcwa").has_model(simple_db)

    def test_existence_is_consistency_with_ics(self):
        egcwa = get_semantics("egcwa")
        assert not egcwa.has_model(parse_database("a. :- a."))
        assert egcwa.has_model(parse_database("a | b. :- a."))

    @given(databases(max_clauses=4))
    def test_oracle_matches_brute(self, db):
        formula = parse_formula("(a -> b) & ~c")
        assert get_semantics("egcwa").infers(db, formula) == get_semantics(
            "egcwa", engine="brute"
        ).infers(db, formula)


class TestEcwa:
    def test_default_partition_is_egcwa(self, simple_db):
        assert get_semantics("ecwa").model_set(simple_db) == get_semantics(
            "egcwa"
        ).model_set(simple_db)

    def test_floating_atoms_are_not_minimized(self):
        db = parse_database("a | z.")
        ecwa = get_semantics("ecwa", p=["a"], z=["z"])
        models = {frozenset(m) for m in ecwa.model_set(db)}
        # a is minimized away; z floats over both values among models.
        assert models == {frozenset({"z"})}

    def test_fixed_atoms_split_cases(self):
        db = parse_database("a | q.")
        ecwa = get_semantics("ecwa", p=["a"], z=[])
        models = {frozenset(m) for m in ecwa.model_set(db)}
        assert models == {frozenset({"q"}), frozenset({"a"})}

    @given(databases(max_clauses=4))
    def test_oracle_matches_brute(self, db):
        atoms = sorted(db.vocabulary)
        p, z = atoms[:3], atoms[4:5]
        formula = parse_formula("a | ~b")
        oracle = get_semantics("ecwa", p=p, z=z).infers(db, formula)
        brute = get_semantics("ecwa", p=p, z=z, engine="brute").infers(
            db, formula
        )
        assert oracle == brute


class TestCircumscription:
    def test_checker_accepts_exactly_pz_minimal_models(self, simple_db):
        checker = CircumscriptionChecker(
            simple_db, simple_db.vocabulary, set()
        )
        from repro.models.enumeration import all_models

        minimal = {frozenset(m) for m in minimal_models_brute(simple_db)}
        for model in all_models(simple_db):
            assert checker.is_circumscribed(model) == (
                frozenset(model) in minimal
            )

    def test_checker_rejects_non_models(self, simple_db):
        checker = CircumscriptionChecker(
            simple_db, simple_db.vocabulary, set()
        )
        assert not checker.is_circumscribed(frozenset({"a"}))

    @given(databases(max_clauses=4))
    def test_circ_equals_ecwa(self, db):
        """The paper: CIRC_{P;Z}(DB) = ECWA_{P;Z}(DB) propositionally —
        verified with two *independent* implementations."""
        atoms = sorted(db.vocabulary)
        p, z = atoms[:3], atoms[4:5]
        circ = get_semantics("circ", p=p, z=z).model_set(db)
        ecwa = get_semantics("ecwa", p=p, z=z).model_set(db)
        assert circ == ecwa

    @given(databases(max_clauses=4))
    def test_circ_inference_matches_ecwa(self, db):
        formula = parse_formula("~a | (b & c)")
        circ = get_semantics("circ").infers(db, formula)
        ecwa = get_semantics("ecwa").infers(db, formula)
        assert circ == ecwa


class TestCircumscriptionAxiom:
    """A third, QBF-based route to CIRC: Lifschitz's axiom instantiated
    at a model is a 2QBF sentence whose validity is circumscribedness."""

    def test_axiom_on_simple_db(self, simple_db):
        from repro.models.enumeration import all_models
        from repro.qbf.solver import is_valid
        from repro.sat.minimal import is_minimal_model
        from repro.semantics.circumscription import circumscription_axiom

        for model in all_models(simple_db):
            qbf = circumscription_axiom(
                simple_db, simple_db.vocabulary, set(), model
            )
            assert is_valid(qbf) == is_minimal_model(simple_db, model)

    @given(databases(max_clauses=3))
    def test_axiom_matches_checker(self, db):
        from repro.models.enumeration import all_models
        from repro.qbf.solver import is_valid
        from repro.semantics.circumscription import (
            CircumscriptionChecker,
            circumscription_axiom,
        )

        atoms = sorted(db.vocabulary)
        p, z = set(atoms[:3]), set(atoms[4:5])
        checker = CircumscriptionChecker(db, p, z)
        for model in all_models(db)[:6]:
            qbf = circumscription_axiom(db, p, z, model)
            assert is_valid(qbf) == checker.is_circumscribed(model)
