"""Correctness tests for the memoizing evaluation engine.

Covers the cache-key discipline (structural sharing, partition
separation), the LRU eviction bound, the exactness of the hit/miss
accounting, and the parallel enumeration paths.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    CachedSemantics,
    EngineCache,
    parallel_all_models,
    parallel_map,
    parallel_minimal_models,
    split_blocks,
)
from repro.engine.cache import ENGINE_CACHE
from repro.errors import ReproError
from repro.logic.parser import parse_database, parse_formula
from repro.models.enumeration import (
    all_models,
    minimal_models_brute,
    models_in_block,
)
from repro.semantics import get_semantics
from repro.workloads import random_positive_db


def fresh_cached(name: str, cache: EngineCache, **kwargs) -> CachedSemantics:
    """A cached semantics bound to a private cache (test isolation)."""
    return CachedSemantics(
        get_semantics(name, engine="oracle", **kwargs), cache=cache
    )


# ----------------------------------------------------------------------
# Key discipline
# ----------------------------------------------------------------------
class TestCacheKeys:
    def test_structurally_equal_databases_share_entries(self):
        cache = EngineCache()
        semantics = fresh_cached("egcwa", cache)
        db1 = parse_database("a | b. c :- a.")
        db2 = parse_database("c :- a.  a | b.")  # same clauses, reordered
        assert db1 == db2 and db1 is not db2
        models = semantics.model_set(db1)
        assert semantics.model_set(db2) is models  # the identical object
        stats = cache.stats()
        assert stats["misses_by_kind"]["model_set"] == 1
        assert stats["hits_by_kind"]["model_set"] == 1

    def test_distinct_databases_do_not_share(self):
        cache = EngineCache()
        semantics = fresh_cached("egcwa", cache)
        semantics.model_set(parse_database("a | b."))
        semantics.model_set(parse_database("a | b. c."))
        assert cache.stats()["misses_by_kind"]["model_set"] == 2
        assert cache.stats()["hits_by_kind"].get("model_set", 0) == 0

    def test_vocabulary_distinguishes_databases(self):
        """Same clauses over a wider vocabulary is a different database
        (models range over the vocabulary) — and a different cache key."""
        cache = EngineCache()
        semantics = fresh_cached("egcwa", cache)
        narrow = parse_database("a | b.")
        wide = narrow.with_vocabulary(["d"])
        assert semantics.model_set(narrow) != semantics.model_set(wide) or (
            cache.stats()["misses_by_kind"]["model_set"] == 2
        )
        assert cache.stats()["misses_by_kind"]["model_set"] == 2

    @pytest.mark.parametrize("name", ["ccwa", "ecwa"])
    def test_distinct_partitions_never_collide(self, name):
        """Different (P;Z) partitions get distinct entries with distinct
        (and correct) results for the same database."""
        cache = EngineCache()
        db = parse_database("a | b. c :- a.", )
        default = fresh_cached(name, cache)
        partitioned = fresh_cached(name, cache, p=["a", "b"], z=["c"])
        first = default.model_set(db)
        second = partitioned.model_set(db)
        stats = cache.stats()
        assert stats["misses_by_kind"]["model_set"] == 2
        assert stats["hits_by_kind"].get("model_set", 0) == 0
        # Both agree with their uncached counterparts.
        assert first == get_semantics(name).model_set(db)
        assert second == get_semantics(
            name, p=["a", "b"], z=["c"]
        ).model_set(db)
        # And repeated queries hit their own entries.
        assert default.model_set(db) is first
        assert partitioned.model_set(db) is second
        assert cache.stats()["hits_by_kind"]["model_set"] == 2

    def test_semantics_name_is_part_of_the_key(self):
        cache = EngineCache()
        db = parse_database("a | b. c :- a.")
        gcwa = fresh_cached("gcwa", cache)
        egcwa = fresh_cached("egcwa", cache)
        assert gcwa.model_set(db) != egcwa.model_set(db)
        assert cache.stats()["misses_by_kind"]["model_set"] == 2

    def test_queries_key_on_the_formula(self):
        cache = EngineCache()
        semantics = fresh_cached("egcwa", cache)
        db = parse_database("a | b.")
        assert semantics.infers(db, parse_formula("a | b"))
        assert not semantics.infers(db, parse_formula("a & b"))
        assert cache.stats()["misses_by_kind"]["infers"] == 2

    def test_validation_still_raises_on_hits(self):
        """Cached PERF still rejects databases with integrity clauses."""
        cache = EngineCache()
        semantics = fresh_cached("perf", cache)
        bad = parse_database("a. :- a, b.")
        for _ in range(2):
            with pytest.raises(ReproError):
                semantics.has_model(bad)

    def test_direct_cached_construction_is_rejected(self):
        with pytest.raises(ReproError):
            get_semantics("egcwa", engine="bogus")
        with pytest.raises(ReproError):
            from repro.semantics import Egcwa

            Egcwa(engine="cached")


# ----------------------------------------------------------------------
# Eviction
# ----------------------------------------------------------------------
class TestEviction:
    def test_lru_bound_is_respected(self):
        cache = EngineCache(maxsize=4)
        for i in range(10):
            cache.get_or_compute("k", i, lambda i=i: i * i)
        assert len(cache) == 4
        stats = cache.stats()
        assert stats["entries"] == 4
        assert stats["evictions"] == 6
        # Oldest entries are gone, newest retained.
        for i in range(6):
            with pytest.raises(KeyError):
                cache.peek("k", i)
        for i in range(6, 10):
            assert cache.peek("k", i) == i * i

    def test_lru_order_refreshes_on_hit(self):
        cache = EngineCache(maxsize=2)
        cache.get_or_compute("k", "a", lambda: 1)
        cache.get_or_compute("k", "b", lambda: 2)
        cache.get_or_compute("k", "a", lambda: 1)  # refresh "a"
        cache.get_or_compute("k", "c", lambda: 3)  # evicts "b", not "a"
        assert cache.peek("k", "a") == 1
        assert cache.peek("k", "c") == 3
        with pytest.raises(KeyError):
            cache.peek("k", "b")

    def test_configure_shrinks_and_evicts(self):
        cache = EngineCache(maxsize=8)
        for i in range(8):
            cache.get_or_compute("k", i, lambda i=i: i)
        cache.configure(3)
        assert len(cache) == 3 and cache.stats()["evictions"] == 5
        cache.configure(0)  # disables caching entirely
        assert len(cache) == 0
        assert cache.get_or_compute("k", "x", lambda: 42) == 42
        assert len(cache) == 0

    def test_clear_resets_entries_and_counters(self):
        cache = EngineCache()
        cache.get_or_compute("k", 1, lambda: 1)
        cache.get_or_compute("k", 1, lambda: 1)
        cache.clear()
        stats = cache.stats()
        assert stats["entries"] == stats["hits"] == stats["misses"] == 0


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------
class TestCounters:
    def test_scripted_access_pattern(self):
        """Counters match a fully scripted sequence exactly."""
        cache = EngineCache(maxsize=3)
        script = [
            ("a", 1),  # miss           -> [a]
            ("a", 1),  # hit            -> [a]
            ("b", 2),  # miss           -> [a, b]
            ("a", 1),  # hit, refreshes -> [b, a]
            ("c", 3),  # miss, full     -> [b, a, c]
            ("d", 4),  # miss, evicts b -> [a, c, d]
            ("b", 2),  # miss, evicts a -> [c, d, b]
            ("a", 1),  # miss, evicts c -> [d, b, a]
        ]
        for key, value in script:
            assert cache.get_or_compute("k", key, lambda v=value: v) == value
        stats = cache.stats()
        assert stats["misses"] == 6
        assert stats["hits"] == 2
        assert stats["evictions"] == 3
        assert stats["hit_rate"] == pytest.approx(2 / 8)
        assert stats["entries"] == 3

    def test_session_level_hit_counting(self):
        """A cached session answers the second identical query from the
        cache and spends zero NP-oracle calls on it."""
        from repro.session import DatabaseSession

        ENGINE_CACHE.clear()
        db = parse_database("a | b. c :- a.")
        session = DatabaseSession(db, engine="cached", certificates=False)
        first = session.ask("~a | ~b", semantics="egcwa")
        second = session.ask("~a | ~b", semantics="egcwa")
        assert first.verdict is second.verdict is True
        assert second.sat_calls == 0
        assert session.cache_stats()["hits_by_kind"]["infers"] >= 1

    def test_stats_shape_matches_satsolver_style(self):
        stats = EngineCache().stats()
        for field in ("entries", "maxsize", "hits", "misses",
                      "evictions", "hit_rate", "entries_by_kind",
                      "hits_by_kind", "misses_by_kind",
                      "evictions_by_kind"):
            assert field in stats


# ----------------------------------------------------------------------
# Parallel enumeration
# ----------------------------------------------------------------------
class TestParallel:
    def test_split_blocks_partition_the_space(self):
        blocks = split_blocks(["a", "b", "c"], 4)
        assert len(blocks) == 4
        fixed = {frozenset(ft) for ft, _ in blocks}
        assert len(fixed) == 4  # all distinct assignments

    def test_models_in_block_fixing_nothing_is_all_models(self):
        db = random_positive_db(4, 5, seed=3)
        assert models_in_block(db) == all_models(db)

    def test_blocks_union_to_all_models(self):
        db = random_positive_db(5, 6, seed=1)
        union = []
        for ft, ff in split_blocks(db.vocabulary, 4):
            union.extend(models_in_block(db, ft, ff))
        assert sorted(map(sorted, union)) == sorted(
            map(sorted, all_models(db))
        )

    def test_parallel_all_models_matches_serial(self):
        db = random_positive_db(10, 11, seed=2)
        assert parallel_all_models(db, max_workers=2) == all_models(db)

    def test_parallel_minimal_models_matches_serial(self):
        db = random_positive_db(10, 11, seed=2)
        assert set(parallel_minimal_models(db, max_workers=2)) == set(
            minimal_models_brute(db)
        )

    def test_serial_fallback_below_threshold(self):
        db = random_positive_db(4, 5, seed=4)
        assert parallel_all_models(db, max_workers=4) == all_models(db)

    def test_parallel_map_preserves_order(self):
        items = list(range(12))
        assert parallel_map(_square, items, max_workers=2) == [
            i * i for i in items
        ]
        assert parallel_map(_square, items, max_workers=1) == [
            i * i for i in items
        ]


def _square(x: int) -> int:
    return x * x


class TestNoPoisonOnCancellation:
    """A computation cut off by a budget trip or an injected fault must
    never leave a (partial or wrong) entry behind in the cache."""

    def test_budget_exceeded_builder_stores_nothing(self):
        from repro.runtime import Budget, BudgetExceeded, budget_scope

        cache = EngineCache(maxsize=16)
        cached = fresh_cached("gcwa", cache)
        db = parse_database("a | b. c :- a.")
        query = parse_formula("~a | ~b")
        with budget_scope(Budget(max_sat_calls=1)):
            with pytest.raises(BudgetExceeded):
                cached.infers(db, query)
        assert cache.stats()["entries"] == 0
        # The next, ungoverned call computes the real answer and caches
        # it; the earlier cancellation cost exactly one extra miss.
        expected = get_semantics("gcwa").infers(db, query)
        assert cached.infers(db, query) == expected
        assert cache.stats()["entries"] == 1
        assert cache.stats()["misses"] == 2
        assert cached.infers(db, query) == expected  # now a hit
        assert cache.stats()["hits"] == 1

    def test_injected_fault_stores_nothing(self):
        from repro.runtime import FaultInjected, FaultPlan, fault_plan

        cache = EngineCache(maxsize=16)
        cached = fresh_cached("egcwa", cache)
        db = parse_database("a | b.")
        query = parse_formula("~a | ~b")
        with fault_plan(FaultPlan(seed=0, sat_fault_rate=1.0)):
            with pytest.raises(FaultInjected):
                cached.infers(db, query)
        assert cache.stats()["entries"] == 0
        assert cached.infers(db, query) is True
        assert cache.peek("infers", cached._key(db, query)) is True

    def test_resilient_over_cached_caches_only_real_answers(self):
        """The resilient engine retrying a cached inner engine: faulted
        attempts never populate the cache, the eventual success does."""
        from repro.engine.resilient import ResilientSemantics, RetryPolicy
        from repro.runtime import FaultPlan, fault_plan

        cache = EngineCache(maxsize=16)
        cached = fresh_cached("egcwa", cache)
        resilient = ResilientSemantics(
            cached, retry=RetryPolicy(max_retries=3, backoff_ms=0)
        )
        db = parse_database("a | b. c :- a.")
        query = parse_formula("~a | ~b")
        with fault_plan(
            FaultPlan(seed=1, sat_fault_rate=1.0, max_sat_faults=2)
        ):
            outcome = resilient.run("infers", db, query)
        assert outcome.value is True
        assert outcome.faults == 2
        assert cache.stats()["entries"] == 1  # only the clean attempt
        assert cache.peek("infers", cached._key(db, query)) is True
