"""Tests for database equivalence under various semantics."""

import pytest
from hypothesis import given

from repro.logic.parser import parse_database
from repro.logic.transform import shift_negation_to_head
from repro.semantics.equivalence import (
    classical_difference_witness,
    classically_equivalent,
    difference_witness_under,
    equivalent_under,
)

from conftest import databases


class TestClassicalEquivalence:
    def test_reordered_clauses(self):
        db1 = parse_database("a | b. c :- a.")
        db2 = parse_database("c :- a. a | b.")
        assert classically_equivalent(db1, db2)

    def test_different_databases(self):
        db1 = parse_database("a | b.")
        db2 = parse_database("a.")
        assert not classically_equivalent(db1, db2)
        witness = classical_difference_witness(db1, db2)
        assert witness is not None
        assert db1.is_model(witness) != db2.is_model(witness)

    def test_vocabulary_padding(self):
        db1 = parse_database("a.")
        db2 = parse_database("a.").with_vocabulary(["z"])
        # Over the union vocabulary both have models {a} and {a, z}.
        assert classically_equivalent(db1, db2)

    @given(databases(max_clauses=4))
    def test_shift_preserves_classical_models(self, db):
        assert classically_equivalent(db, shift_negation_to_head(db))

    @given(databases(max_clauses=4))
    def test_witness_is_sound(self, db):
        other = parse_database("a | b.").with_vocabulary(db.vocabulary | {"a", "b"})
        witness = classical_difference_witness(db, other)
        if witness is None:
            assert classically_equivalent(db, other)
        else:
            padded1 = db.with_vocabulary(other.vocabulary | db.vocabulary)
            padded2 = other.with_vocabulary(
                other.vocabulary | db.vocabulary
            )
            assert padded1.is_model(witness) != padded2.is_model(witness)


class TestSemanticEquivalence:
    def test_classical_but_not_stable(self):
        """Shifting negation preserves classical models but not stable
        models: a :- not b has the single stable model {a}, while the
        shifted a | b has two minimal (= stable) models."""
        db = parse_database("a :- not b.")
        shifted = shift_negation_to_head(db)
        assert classically_equivalent(db, shifted)
        assert not equivalent_under(db, shifted, "dsm")
        witness = difference_witness_under(db, shifted, "dsm")
        assert witness is not None
        model, side = witness
        assert model == {"b"} and side == 2

    def test_equivalent_under_egcwa(self):
        db1 = parse_database("a | b. a | b | c.")
        db2 = parse_database("a | b.").with_vocabulary(["c"])
        # The wider clause is subsumed: same models, same minimal models.
        assert equivalent_under(db1, db2, "egcwa")

    def test_gcwa_vs_egcwa_discriminate(self):
        """Two databases can be GCWA-equivalent but not EGCWA-equivalent
        is impossible (EGCWA refines GCWA's closure) — but the converse
        happens; here both directions agree, as a sanity check."""
        db1 = parse_database("a | b.")
        db2 = parse_database("a | b. a | b | c.").with_vocabulary(
            ["a", "b", "c"]
        )
        db1 = db1.with_vocabulary(["c"])
        assert equivalent_under(db1, db2, "gcwa")
        assert equivalent_under(db1, db2, "egcwa")

    @given(databases(allow_neg=False, max_clauses=3))
    def test_adding_entailed_clause_preserves_model_theoretic_semantics(
        self, db
    ):
        """Adding a clause that is already classically entailed (a head
        weakening of an existing clause) keeps the model sets of the
        *model-theoretic* semantics unchanged — GCWA/EGCWA depend only on
        M(DB)."""
        from repro.logic.clause import Clause

        atoms = sorted(db.vocabulary)
        existing = sorted(db.clauses)[0]
        weakened = Clause(
            existing.head | {atoms[0]},
            existing.body_pos - {atoms[0]},  # head atom leaves the body
            existing.body_neg,
        )
        if not (weakened.head & weakened.body_pos):
            extended = db.with_clauses([weakened])
            if classically_equivalent(db, extended):
                for name in ("gcwa", "egcwa"):
                    assert equivalent_under(db, extended, name), name

    def test_ddr_is_syntax_sensitive(self):
        """DDR/WGCWA is *proof-theoretic*: adding the entailed clause
        ``a | b`` to ``{a.}`` changes its closure (b becomes possibly
        true), although the classical models are unchanged.  GCWA, being
        model-theoretic, is unaffected — a known contrast between the
        weak and the generalized CWA."""
        db = parse_database("a.").with_vocabulary(["b"])
        extended = parse_database("a. a | b.")
        assert classically_equivalent(db, extended)
        assert equivalent_under(db, extended, "gcwa")
        assert not equivalent_under(db, extended, "ddr")

    def test_semantics_instance_accepted(self):
        from repro.semantics import get_semantics

        db = parse_database("a | b.")
        assert equivalent_under(db, db, get_semantics("egcwa"))
