"""Integration tests: every example script runs and prints what its
narrative promises."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart", capsys)
    assert "EGCWA infers 'not both suspects': True" in out
    assert "GCWA  infers 'not both suspects': False" in out
    assert "Minimal models" in out


def test_diagnosis(capsys):
    out = _run_example("diagnosis", capsys)
    assert "faults: ['ab1']" in out
    assert "faults: ['ab2']" in out
    assert "Circumscription agrees with ECWA: True" in out


def test_game_stratified(capsys):
    out = _run_example("game_stratified", capsys)
    assert "position 1: LOST" in out
    assert "position 2: WON" in out
    assert "PERF models: none" in out  # cyclic games
    assert "win1=1/2" in out  # PDSM partial model on the odd cycle


def test_complexity_tour(capsys):
    out = _run_example("complexity_tour", capsys)
    assert "NP-oracle calls: 0" in out  # the tractable cell
    assert "Σ2 calls" in out
    assert "valid (CEGAR 2QBF solver): True" in out
    assert "True )" in out  # reduction contract confirmed


def test_graph_coloring(capsys):
    out = _run_example("graph_coloring", capsys)
    assert "not 2-colorable" in out  # the triangle
    assert "2 proper colorings" in out  # the path / even cycle


def test_scaling_study(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["scaling_study.py", "3"])
    out = _run_example("scaling_study", capsys)
    assert "P-cell" in out
    assert "logarithmically" in out
    assert "P-cell ms" in out


def test_suppliers(capsys):
    out = _run_example("suppliers", capsys)
    assert "'not both shipped the nuts': True" in out
    assert "GCWA cannot tell: False" in out
    assert "certain=False  possible=True" in out
    assert "stays open: minimal model" in out
