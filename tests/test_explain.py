"""Tests for the explanations API (repro.semantics.explain)."""

import pytest
from hypothesis import given

from repro.errors import NotPositiveError
from repro.logic.parser import parse_database, parse_formula
from repro.semantics import get_semantics
from repro.semantics.explain import (
    derivation_of,
    explain_closure_literal,
    explain_non_inference,
)

from conftest import databases, positive_databases

SEMANTICS_WITH_CERTIFICATES = [
    "egcwa", "gcwa", "ddr", "pws", "dsm", "perf", "pdsm",
]


class TestCounterModels:
    def test_counter_model_for_egcwa(self, simple_db):
        certificate = explain_non_inference(
            simple_db, parse_formula("c"), "egcwa"
        )
        assert certificate is not None
        assert certificate.model == {"b"}
        assert certificate.check(simple_db)

    def test_none_when_inferred(self, simple_db):
        assert explain_non_inference(
            simple_db, parse_formula("a | b"), "egcwa"
        ) is None

    def test_pdsm_certificate_is_three_valued(self, unstratified_db):
        certificate = explain_non_inference(
            unstratified_db, parse_formula("a | b"), "pdsm"
        )
        assert certificate is not None
        assert certificate.model.undefined == {"a", "b"}
        assert certificate.check(unstratified_db)

    @pytest.mark.parametrize("name", SEMANTICS_WITH_CERTIFICATES)
    def test_certificates_check_out(self, name, simple_db, unstratified_db):
        db = simple_db if name in ("ddr", "pws") else simple_db
        formula = parse_formula("a")
        engine = get_semantics(name)
        certificate = explain_non_inference(db, formula, name)
        inferred = engine.infers(db, formula)
        assert (certificate is None) == inferred
        if certificate is not None:
            assert certificate.check(db)

    @given(databases(max_clauses=4))
    def test_certificate_agrees_with_engine_dsm(self, db):
        formula = parse_formula("a | ~b")
        certificate = explain_non_inference(db, formula, "dsm")
        assert (certificate is None) == get_semantics("dsm").infers(
            db, formula
        )
        if certificate is not None:
            assert certificate.check(db)

    @given(positive_databases(max_clauses=4))
    def test_certificate_agrees_with_engine_gcwa(self, db):
        formula = parse_formula("~a | b")
        certificate = explain_non_inference(db, formula, "gcwa")
        assert (certificate is None) == get_semantics("gcwa").infers(
            db, formula
        )
        if certificate is not None:
            assert certificate.check(db)

    def test_render_mentions_model(self, simple_db):
        certificate = explain_non_inference(
            simple_db, parse_formula("c"), "egcwa"
        )
        assert "{b}" in certificate.render()


class TestDerivations:
    def test_direct_fact(self):
        db = parse_database("a | b.")
        derivation = derivation_of(db, "a")
        assert derivation is not None
        assert derivation.check(db)
        assert len(derivation.steps) == 1

    def test_chained_derivation(self):
        db = parse_database("a. b :- a. c :- b.")
        derivation = derivation_of(db, "c")
        assert derivation is not None
        assert [s.atom for s in derivation.steps] == ["a", "b", "c"]
        assert derivation.check(db)

    def test_underivable_atom(self):
        db = parse_database("a. b :- c.")
        assert derivation_of(db, "b") is None

    def test_example_31_derivation_of_c(self, example_31):
        """Example 3.1: c is possibly true via the (IC-ignoring) fixpoint."""
        derivation = derivation_of(example_31, "c")
        assert derivation is not None
        assert derivation.check(example_31)

    def test_rejects_negation(self, unstratified_db):
        with pytest.raises(NotPositiveError):
            derivation_of(unstratified_db, "a")

    @given(positive_databases(max_clauses=4))
    def test_derivations_cover_exactly_possibly_true(self, db):
        from repro.semantics.ddr import possibly_true_atoms

        possible = possibly_true_atoms(db)
        for atom in sorted(db.vocabulary):
            derivation = derivation_of(db, atom)
            assert (derivation is not None) == (atom in possible)
            if derivation is not None:
                assert derivation.check(db)

    def test_tampered_derivation_fails_check(self):
        db = parse_database("a. b :- a.")
        derivation = derivation_of(db, "b")
        derivation.steps.pop(0)  # remove the support for a
        assert not derivation.check(db)


class TestClosureExplanations:
    def test_negated_atom(self):
        db = parse_database("a. b :- c.")
        explanation = explain_closure_literal(db, "b")
        assert explanation.negated
        assert explanation.check(db)
        assert "closure" in explanation.render()

    def test_open_atom_has_witness(self, simple_db):
        explanation = explain_closure_literal(simple_db, "c")
        assert not explanation.negated
        assert explanation.witness == {"a", "c"}
        assert explanation.check(simple_db)

    def test_unknown_atom_is_negated(self, simple_db):
        assert explain_closure_literal(simple_db, "zz").negated

    @given(databases(max_clauses=4))
    def test_explanations_match_free_for_negation(self, db):
        from repro.semantics.gcwa import free_for_negation

        free = free_for_negation(db)
        for atom in sorted(db.vocabulary):
            explanation = explain_closure_literal(db, atom)
            assert explanation.negated == (atom in free)
            assert explanation.check(db)
