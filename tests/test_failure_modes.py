"""Failure injection: wrong inputs must fail loudly and precisely."""

import pytest

from repro.errors import (
    NotPositiveError,
    NotStratifiedError,
    ParseError,
    PartitionError,
    ReproError,
    SolverError,
)
from repro.logic.parser import parse_clause, parse_database, parse_formula
from repro.semantics import get_semantics


class TestParserFailures:
    @pytest.mark.parametrize(
        "text",
        [
            "a | | b.",
            "a :- not .",
            ":- .",
            "a :- b,, c.",
            "1bad.",
        ],
    )
    def test_clause_errors(self, text):
        with pytest.raises(ParseError):
            parse_clause(text)

    def test_formula_error_carries_context(self):
        with pytest.raises(ParseError) as info:
            parse_formula("a & & b")
        assert "formula" in str(info.value) or "found" in str(info.value)

    def test_empty_formula(self):
        with pytest.raises(ParseError):
            parse_formula("   ")


class TestDomainRestrictions:
    def test_ddr_rejects_negation(self, unstratified_db):
        for method in ("infers", "model_set", "has_model"):
            with pytest.raises(NotPositiveError):
                semantics = get_semantics("ddr")
                if method == "infers":
                    semantics.infers(unstratified_db, parse_formula("a"))
                elif method == "model_set":
                    semantics.model_set(unstratified_db)
                else:
                    semantics.has_model(unstratified_db)

    def test_pws_rejects_negation(self, unstratified_db):
        with pytest.raises(NotPositiveError):
            get_semantics("pws").has_model(unstratified_db)

    def test_perf_rejects_integrity_clauses(self):
        db = parse_database("a | b. :- a, b.")
        with pytest.raises(NotPositiveError):
            get_semantics("perf").model_set(db)

    def test_icwa_rejects_unstratified(self, unstratified_db):
        with pytest.raises(NotStratifiedError):
            get_semantics("icwa").infers(
                unstratified_db, parse_formula("a")
            )

    def test_partition_errors_bubble_up(self, simple_db):
        with pytest.raises(PartitionError):
            get_semantics("ecwa", p=["a"], z=["a"]).model_set(simple_db)


class TestSolverGuards:
    def test_pz_solver_rejects_bad_partition(self, simple_db):
        from repro.sat.minimal import PZMinimalModelSolver

        with pytest.raises(PartitionError):
            PZMinimalModelSolver(simple_db, p={"a", "nope"}, z=set())

    def test_prioritized_solver_rejects_overlap(self, simple_db):
        from repro.sat.minimal import PrioritizedMinimalModelSolver

        with pytest.raises(SolverError):
            PrioritizedMinimalModelSolver(
                simple_db, levels=[{"a"}, {"a"}]
            )

    def test_qbf_engine_typo(self):
        from repro.qbf.formula import dnf_formula, exists_forall
        from repro.qbf.solver import is_valid

        qbf = exists_forall(["x"], ["y"], dnf_formula([(("x",), ())]))
        with pytest.raises(ValueError):
            is_valid(qbf, engine="typo")


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ParseError,
            NotPositiveError,
            NotStratifiedError,
            PartitionError,
            SolverError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_parse_error_fields(self):
        error = ParseError("bad", text="a &", position=2)
        assert error.text == "a &" and error.position == 2
