"""Deterministic fault-injection tests (repro.runtime.faults + the
resilient engine's degradation ladder).

Pinned claims:

* a :class:`~repro.runtime.faults.FaultPlan` is a pure function of its
  seed — re-running the same evaluation under the same seed takes the
  same degradation path (same status, answer, attempt and fault counts);
* the per-channel streams are independent: enabling latency does not
  shift which SAT calls fault;
* every rung of the ladder is reachable and deterministic: retry →
  success, fallback → DEGRADED, no fallback → FAILED, crash-injected
  parallel dispatches → serial recovery with exact answers;
* with **no faults injected**, ``engine="resilient"`` is answer-identical
  to ``engine="oracle"`` across the full seeded differential corpus.
"""

from __future__ import annotations

import pytest

from repro.engine.parallel import MIN_PARALLEL_ATOMS, parallel_all_models
from repro.engine.resilient import ResilientSemantics, RetryPolicy
from repro.logic.atoms import Literal
from repro.logic.parser import parse_database, parse_formula
from repro.models.enumeration import all_models
from repro.runtime import (
    RUNTIME_STATS,
    FaultInjected,
    FaultPlan,
    Status,
    fault_plan,
)
from repro.semantics import get_semantics
from repro.workloads import random_positive_db, random_query_formula

from test_differential import COUNTS, SEMANTICS_FOR, build_db


@pytest.fixture(autouse=True)
def _reset_runtime_stats():
    RUNTIME_STATS.reset()
    yield
    RUNTIME_STATS.reset()


def outcome_signature(outcome):
    """The deterministic part of an outcome (usage carries wall-clock
    timings, which legitimately vary run to run)."""
    return (
        outcome.status,
        outcome.value,
        outcome.attempts,
        outcome.engine_used,
        outcome.faults,
    )


DB_TEXT = "a | b. c :- a. d | e :- b."
QUERY_TEXT = "~a | ~b"


def run_once(seed, sat_fault_rate=0.5, max_retries=2, **plan_kwargs):
    db = parse_database(DB_TEXT)
    query = parse_formula(QUERY_TEXT)
    semantics = get_semantics(
        "egcwa",
        engine="resilient",
        retry=RetryPolicy(max_retries=max_retries, backoff_ms=0),
    )
    plan = FaultPlan(seed=seed, sat_fault_rate=sat_fault_rate, **plan_kwargs)
    with fault_plan(plan):
        outcome = semantics.run("infers", db, query)
    return outcome, plan


# ----------------------------------------------------------------------
# Seeded determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_same_seed_same_degradation_path(self):
        for seed in range(8):
            first, plan_a = run_once(seed)
            second, plan_b = run_once(seed)
            assert outcome_signature(first) == outcome_signature(second)
            assert plan_a.stats() == plan_b.stats()

    def test_seeds_cover_distinct_paths(self):
        """Across a seed range, at least two different fault counts occur
        (the plan is seed-sensitive, not a constant schedule).  The rate
        is kept low so individual attempts can complete — a successful
        EGCWA inference needs several consecutive clean SAT calls."""
        signatures = {
            run_once(seed, sat_fault_rate=0.15)[0].faults
            for seed in range(12)
        }
        assert len(signatures) > 1

    def test_channels_are_independent(self):
        """Turning the latency channel on must not shift which SAT calls
        fault: each channel draws from its own seeded stream."""
        recorded = []
        quiet, _ = run_once(5)
        noisy_plan = FaultPlan(
            seed=5,
            sat_fault_rate=0.5,
            latency_ms=1.0,
            sleeper=lambda s: recorded.append(s),
        )
        db = parse_database(DB_TEXT)
        query = parse_formula(QUERY_TEXT)
        semantics = get_semantics(
            "egcwa", engine="resilient",
            retry=RetryPolicy(max_retries=2, backoff_ms=0),
        )
        with fault_plan(noisy_plan):
            noisy = semantics.run("infers", db, query)
        assert outcome_signature(noisy) == outcome_signature(quiet)
        assert recorded  # latency really was injected (via the sleeper)

    def test_plan_reprs_do_not_leak_state(self):
        plan = FaultPlan(seed=3, sat_fault_rate=0.25)
        assert "seed=3" in repr(plan)


# ----------------------------------------------------------------------
# The degradation ladder, rung by rung
# ----------------------------------------------------------------------
class TestLadder:
    def test_fail_n_times_then_succeed(self):
        """max_sat_faults turns the plan into an exact N-failure schedule,
        so the retry rung alone recovers (no fallback involved)."""
        outcome, plan = run_once(
            seed=0, sat_fault_rate=1.0, max_retries=3, max_sat_faults=2
        )
        assert outcome.status is Status.OK
        assert outcome.engine_used == "oracle"
        assert outcome.attempts == 3  # two faulted attempts + success
        assert outcome.faults == 2
        assert plan.sat_faults == 2
        assert RUNTIME_STATS.retries == 2
        assert RUNTIME_STATS.fallbacks == 0

    def test_persistent_faults_degrade_to_brute_fallback(self):
        outcome, _ = run_once(seed=0, sat_fault_rate=1.0, max_retries=1)
        assert outcome.status is Status.DEGRADED
        assert outcome.engine_used == "brute"
        # The value is still the exact answer.
        expected = get_semantics("egcwa").infers(
            parse_database(DB_TEXT), parse_formula(QUERY_TEXT)
        )
        assert outcome.value == expected
        assert RUNTIME_STATS.fallbacks == 1

    def test_no_fallback_fails_closed(self):
        semantics = get_semantics(
            "egcwa",
            engine="resilient",
            fallback=None,
            retry=RetryPolicy(max_retries=1, backoff_ms=0),
        )
        db = parse_database(DB_TEXT)
        with fault_plan(FaultPlan(seed=0, sat_fault_rate=1.0)):
            outcome = semantics.run("infers", db, parse_formula(QUERY_TEXT))
        assert outcome.status is Status.FAILED
        assert outcome.value is None
        assert isinstance(outcome.exception, FaultInjected)
        # The strict API surfaces the underlying exception.
        with fault_plan(FaultPlan(seed=0, sat_fault_rate=1.0)):
            with pytest.raises(FaultInjected):
                semantics.infers(db, parse_formula(QUERY_TEXT))

    def test_retry_backoff_uses_policy_sleeper(self):
        delays = []
        semantics = get_semantics(
            "egcwa",
            engine="resilient",
            retry=RetryPolicy(
                max_retries=2,
                backoff_ms=10,
                backoff_factor=3.0,
                sleeper=delays.append,
            ),
        )
        db = parse_database(DB_TEXT)
        with fault_plan(FaultPlan(seed=0, sat_fault_rate=1.0)):
            semantics.run("infers", db, parse_formula(QUERY_TEXT))
        assert delays == [0.010, 0.030]  # exponential, in seconds

    def test_crashed_parallel_dispatches_recovered_serially(self):
        db = random_positive_db(MIN_PARALLEL_ATOMS, 8, seed=7)
        expected = all_models(db)
        with fault_plan(FaultPlan(seed=2, worker_crash_rate=1.0)):
            recovered = parallel_all_models(db, max_workers=2)
        assert recovered == expected
        assert RUNTIME_STATS.worker_crashes_injected > 0
        assert (
            RUNTIME_STATS.worker_crashes_recovered
            == RUNTIME_STATS.worker_crashes_injected
        )

    def test_partial_crash_rate_recovers_exactly(self):
        db = random_positive_db(MIN_PARALLEL_ATOMS, 8, seed=8)
        expected = all_models(db)
        with fault_plan(FaultPlan(seed=9, worker_crash_rate=0.5)):
            recovered = parallel_all_models(db, max_workers=2)
        assert recovered == expected


# ----------------------------------------------------------------------
# Fault-free resilient == oracle on the differential corpus
# ----------------------------------------------------------------------
@pytest.mark.parametrize("regime", sorted(COUNTS))
def test_fault_free_resilient_matches_oracle(regime):
    """With no fault plan installed and a neutral budget, the resilient
    engine answers every corpus query exactly as the uncached oracle —
    the wrapper adds governance, never drift."""
    for seed in range(COUNTS[regime]):
        db = build_db(regime, seed)
        query = random_query_formula(
            sorted(db.vocabulary), depth=2, seed=seed
        )
        some_atom = sorted(db.vocabulary)[0]
        literals = [Literal.pos(some_atom), Literal.neg(some_atom)]
        for name in SEMANTICS_FOR[regime]:
            oracle = get_semantics(name, engine="oracle")
            resilient = get_semantics(name, engine="resilient")
            assert resilient.infers(db, query) == oracle.infers(db, query), (
                regime, seed, name, "infers")
            for literal in literals:
                assert resilient.infers_literal(db, literal) == (
                    oracle.infers_literal(db, literal)
                ), (regime, seed, name, "infers_literal", literal)
            assert resilient.has_model(db) == oracle.has_model(db), (
                regime, seed, name, "has_model")
    assert RUNTIME_STATS.sat_faults_injected == 0
    assert RUNTIME_STATS.retries == 0
    assert RUNTIME_STATS.fallbacks == 0


def test_fault_free_resilient_matches_oracle_model_sets():
    """model_set agreement on a corpus subset (the expensive surface)."""
    for regime in sorted(COUNTS):
        for seed in range(5):
            db = build_db(regime, seed)
            for name in SEMANTICS_FOR[regime][:4]:
                oracle = get_semantics(name, engine="oracle")
                resilient = get_semantics(name, engine="resilient")
                assert resilient.model_set(db) == oracle.model_set(db), (
                    regime, seed, name)


def test_resilient_outcomes_counted_per_instance():
    semantics = get_semantics("egcwa", engine="resilient")
    db = parse_database(DB_TEXT)
    semantics.run("has_model", db)
    semantics.run("has_model", db)
    assert semantics.stats()["ok"] == 2
    assert semantics.stats()["failed"] == 0
