"""Tests for repro.logic.formula."""

import itertools
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.formula import (
    BOTTOM,
    FALSE3,
    TOP,
    TRUE3,
    UNDEF3,
    And,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
    conj,
    disj,
    lit,
    negation_normal_form,
)

ATOMS = ["a", "b", "c"]


@st.composite
def formulas(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return TOP
        if choice == 1:
            return BOTTOM
        return Var(draw(st.sampled_from(ATOMS)))
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return Not(draw(formulas(depth=depth - 1)))
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    if kind == 1:
        return And(left, right)
    if kind == 2:
        return Or(left, right)
    if kind == 3:
        return Implies(left, right)
    return Iff(left, right)


class TestEvaluation:
    def test_constants(self):
        assert TOP.evaluate(set()) and not BOTTOM.evaluate(set())

    def test_var(self):
        assert Var("a").evaluate({"a"})
        assert not Var("a").evaluate({"b"})

    def test_operators_build_expected_nodes(self):
        formula = (Var("a") & ~Var("b")) >> Var("c")
        assert isinstance(formula, Implies)
        assert formula.evaluate({"a", "c"})
        assert not formula.evaluate({"a"})

    def test_iff(self):
        formula = Var("a").iff(Var("b"))
        assert formula.evaluate(set()) and formula.evaluate({"a", "b"})
        assert not formula.evaluate({"a"})

    def test_empty_conj_disj(self):
        assert conj([]) is TOP
        assert disj([]) is BOTTOM

    def test_nary_flattening(self):
        formula = And(And(Var("a"), Var("b")), Var("c"))
        assert len(formula.operands) == 3

    def test_lit_helper(self):
        assert lit("a").evaluate({"a"})
        assert lit("a", positive=False).evaluate(set())


class TestThreeValued:
    def test_kleene_negation(self):
        valuation = {"a": UNDEF3}
        assert Not(Var("a")).evaluate3(valuation) == UNDEF3

    def test_kleene_and_or(self):
        valuation = {"a": TRUE3, "b": UNDEF3}
        assert And(Var("a"), Var("b")).evaluate3(valuation) == UNDEF3
        assert Or(Var("a"), Var("b")).evaluate3(valuation) == TRUE3

    def test_kleene_implication(self):
        valuation = {"a": UNDEF3, "b": FALSE3}
        assert Implies(Var("a"), Var("b")).evaluate3(valuation) == UNDEF3

    def test_missing_atom_is_false(self):
        assert Var("zz").evaluate3({}) == FALSE3

    @given(formulas())
    def test_three_valued_restricts_to_classical(self, formula):
        """On total valuations, evaluate3 coincides with evaluate."""
        atoms = sorted(formula.atoms())
        for bits in itertools.product([False, True], repeat=len(atoms)):
            model = {a for a, bit in zip(atoms, bits) if bit}
            valuation = {
                a: TRUE3 if a in model else FALSE3 for a in atoms
            }
            expected = TRUE3 if formula.evaluate(model) else FALSE3
            assert formula.evaluate3(valuation) == expected


class TestNNF:
    @given(formulas())
    def test_nnf_is_equivalent(self, formula):
        nnf = negation_normal_form(formula)
        atoms = sorted(formula.atoms() | nnf.atoms())
        for bits in itertools.product([False, True], repeat=len(atoms)):
            model = {a for a, bit in zip(atoms, bits) if bit}
            assert nnf.evaluate(model) == formula.evaluate(model)

    @given(formulas())
    def test_nnf_has_no_deep_negation(self, formula):
        def check(node) -> None:
            if isinstance(node, Not):
                assert isinstance(node.operand, Var)
            elif isinstance(node, (And, Or)):
                for op in node.operands:
                    check(op)
            else:
                assert isinstance(node, (Var, Top, Bottom))

        check(negation_normal_form(formula))


class TestStructure:
    def test_equality_is_structural(self):
        assert And(Var("a"), Var("b")) == And(Var("a"), Var("b"))
        assert And(Var("a"), Var("b")) != And(Var("b"), Var("a"))

    def test_hashable(self):
        assert len({Var("a"), Var("a"), Not(Var("a"))}) == 2

    def test_atoms(self):
        formula = Implies(Var("a"), Iff(Var("b"), Not(Var("c"))))
        assert formula.atoms() == {"a", "b", "c"}

    def test_str_parenthesises(self):
        formula = Or(And(Var("a"), Var("b")), Var("c"))
        assert str(formula) == "(a & b) | c"

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Var("a").name = "b"
