"""Tests for GCWA and CCWA."""

import pytest
from hypothesis import given

from repro.logic.parser import parse_database, parse_formula
from repro.semantics import get_semantics
from repro.semantics.gcwa import (
    augmented_database,
    free_for_negation,
    free_for_negation_brute,
)

from conftest import databases, positive_databases


class TestFreeForNegation:
    def test_classic_example(self):
        # a | b: neither atom is false in all minimal models.
        db = parse_database("a | b.")
        assert free_for_negation(db) == set()

    def test_unsupported_atom_is_free(self):
        db = parse_database("a. b :- c.")
        assert free_for_negation(db) == {"b", "c"}

    def test_inconsistent_db_frees_everything(self):
        db = parse_database("a. :- a.")
        assert free_for_negation(db) == {"a"}

    @given(databases())
    def test_matches_brute(self, db):
        assert free_for_negation(db) == free_for_negation_brute(db)

    def test_augmented_database_adds_denials(self):
        db = parse_database("a | b.")
        augmented = augmented_database(db, frozenset({"c"}))
        assert augmented.has_integrity_clauses


class TestGcwaDecisions:
    def test_gcwa_does_not_infer_exclusive_or(self):
        # The textbook separation from EGCWA: {a,b} is a GCWA model.
        db = parse_database("a | b.")
        gcwa = get_semantics("gcwa")
        assert not gcwa.infers(db, parse_formula("~a | ~b"))
        assert get_semantics("egcwa").infers(db, parse_formula("~a | ~b"))

    def test_gcwa_negative_literal(self):
        db = parse_database("a. b :- c.")
        gcwa = get_semantics("gcwa")
        assert gcwa.infers_literal(db, "not b")
        assert gcwa.infers_literal(db, "not c")
        assert not gcwa.infers_literal(db, "not a")

    def test_gcwa_positive_literal_is_minimal_entailment(self):
        db = parse_database("a | b. c :- a. c :- b.")
        assert get_semantics("gcwa").infers_literal(db, "c")

    def test_has_model_positive_always(self, simple_db):
        assert get_semantics("gcwa").has_model(simple_db)

    def test_has_model_tracks_consistency(self):
        assert not get_semantics("gcwa").has_model(
            parse_database("a. :- a.")
        )
        assert get_semantics("gcwa").has_model(
            parse_database("a | b. :- a, b.")
        )

    @given(databases(max_clauses=4))
    def test_oracle_matches_brute_on_formulas(self, db):
        formula = parse_formula("~a | (b & ~c)")
        oracle = get_semantics("gcwa").infers(db, formula)
        brute = get_semantics("gcwa", engine="brute").infers(db, formula)
        assert oracle == brute

    @given(databases(max_clauses=4))
    def test_oracle_matches_brute_on_literals(self, db):
        for literal in ("not a", "b"):
            oracle = get_semantics("gcwa").infers_literal(db, literal)
            brute = get_semantics("gcwa", engine="brute").infers_literal(
                db, literal
            )
            assert oracle == brute

    def test_minimal_models_are_gcwa_models(self, simple_db):
        gcwa_models = get_semantics("gcwa").model_set(simple_db)
        egcwa_models = get_semantics("egcwa").model_set(simple_db)
        assert egcwa_models <= gcwa_models


class TestCcwa:
    def test_q_z_empty_reduces_to_gcwa(self, simple_db):
        ccwa = get_semantics("ccwa")  # default partition P = V
        gcwa = get_semantics("gcwa")
        assert ccwa.model_set(simple_db) == gcwa.model_set(simple_db)

    def test_fixed_atoms_are_protected(self):
        db = parse_database("a :- q.")
        # q in Q (fixed): q is not negated even though no minimal model
        # (with q varying) would keep it; with q fixed both values occur.
        ccwa = get_semantics("ccwa", p=["a"], z=[])
        free = ccwa.free_atoms(db)
        assert "q" not in free
        assert "a" not in free  # a true in the minimal model with q true

    def test_floating_atoms_do_not_block_negation(self):
        db = parse_database("a | z.")
        ccwa = get_semantics("ccwa", p=["a"], z=["z"])
        # Minimizing a with z floating: model {z} beats {a}, so a is
        # false in all (P;Z)-minimal models.
        assert ccwa.free_atoms(db) == {"a"}
        assert ccwa.infers_literal(db, "not a")

    def test_ccwa_literal_in_p(self):
        db = parse_database("a | b. c :- a.")
        ccwa = get_semantics("ccwa", p=["c"], z=["a"])
        assert not ccwa.infers_literal(db, "not c")

    @given(databases(max_clauses=4))
    def test_oracle_matches_brute(self, db):
        atoms = sorted(db.vocabulary)
        p, z = atoms[:3], atoms[4:5]
        q_formula = parse_formula("~a | b")
        oracle = get_semantics("ccwa", p=p, z=z).infers(db, q_formula)
        brute = get_semantics("ccwa", p=p, z=z, engine="brute").infers(
            db, q_formula
        )
        assert oracle == brute

    def test_partition_validation(self, simple_db):
        from repro.errors import PartitionError

        with pytest.raises(PartitionError):
            get_semantics("ccwa", p=["a", "zz"]).model_set(simple_db)
