"""Golden-plan regression harness.

``tests/data/golden_plans.json`` pins the planner's chosen procedure,
claimed complexity, and predicted NP/Σ₂ᵖ/node counts for a corpus of
databases spanning every lattice region × every dispatch family. Any
cost-model or lattice change that silently flips a plan fails here;
deliberate changes are signed off by re-running
``tests/regen_golden_plans.py`` and reviewing the JSON diff.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.fragment import FRAGMENT_ORDER, fragment_profile
from repro.analysis.planner import FragmentPlanner
from repro.logic.parser import parse_database
from repro.semantics import get_semantics
from tests.regen_golden_plans import GOLDEN_PATH, build_entries


def load_golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)["entries"]


GOLDEN = load_golden()


@pytest.mark.parametrize(
    "entry", GOLDEN, ids=[entry["id"] for entry in GOLDEN]
)
def test_replayed_plan_matches_golden(entry):
    planner = FragmentPlanner()
    prof = fragment_profile(parse_database(entry["db"]))
    plan = planner.plan(
        prof, get_semantics(entry["semantics"]), entry["method"]
    )
    actual = {
        "fragment": plan.fragment,
        "procedure": plan.procedure,
        "claim": plan.claim,
        "predicted_np_calls": plan.predicted_np_calls,
        "predicted_sigma2": plan.predicted_sigma2,
        "predicted_nodes": plan.predicted_nodes,
    }
    assert actual == entry["expected"], entry["id"]


def test_golden_file_is_current():
    """The checked-in JSON byte-matches what the regen script would
    write today — no hand edits, no stale entries."""
    assert build_entries() == GOLDEN


def test_golden_corpus_covers_the_lattice():
    fragments = {entry["expected"]["fragment"] for entry in GOLDEN}
    assert fragments == set(FRAGMENT_ORDER), (
        set(FRAGMENT_ORDER) ^ fragments
    )


def test_golden_corpus_covers_every_procedure():
    procedures = {entry["expected"]["procedure"] for entry in GOLDEN}
    assert procedures == {
        "default", "horn-least-model", "hcf-founded", "hcf-closure",
        "stratified-perfect", "kernel-bitset",
    }
