"""Tests for the grounder (repro.ground)."""

import pytest

from repro.errors import ParseError, ReproError
from repro.ground import (
    Grounder,
    PredicateAtom,
    ground_program,
    is_constant,
    is_variable,
    parse_predicate_atom,
    parse_rule,
    parse_rules,
)
from repro.logic.parser import parse_database
from repro.semantics import get_semantics


class TestTerms:
    def test_variable_vs_constant(self):
        assert is_variable("X") and not is_variable("x")
        assert is_constant("a1") and not is_constant("Y")

    def test_parse_predicate_atom(self):
        atom = parse_predicate_atom("move(X, b)")
        assert atom.predicate == "move"
        assert atom.terms == ("X", "b")
        assert atom.variables == {"X"}

    def test_parse_propositional_atom(self):
        atom = parse_predicate_atom("rain")
        assert atom.terms == () and atom.is_ground

    def test_ground_name_round_trips_through_parser(self):
        name = PredicateAtom("move", ("a", "b")).ground_name()
        db = parse_database(f"{name}.")
        assert name in db.vocabulary

    def test_ground_name_requires_ground(self):
        with pytest.raises(ParseError):
            PredicateAtom("p", ("X",)).ground_name()

    def test_substitute(self):
        atom = PredicateAtom("e", ("X", "Y"))
        assert atom.substitute({"X": "a"}).terms == ("a", "Y")

    @pytest.mark.parametrize("bad", ["Upper(x)", "p(x,", "p()q", ""])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_predicate_atom(bad)


class TestRules:
    def test_parse_rule(self):
        rule = parse_rule("win(X) :- move(X, Y), not win(Y).")
        assert [str(a) for a in rule.head] == ["win(X)"]
        assert len(rule.body_pos) == 1 and len(rule.body_neg) == 1

    def test_disjunctive_head(self):
        rule = parse_rule("p(X) | q(X) :- node(X).")
        assert len(rule.head) == 2

    def test_integrity_rule(self):
        rule = parse_rule(":- p(X), q(X).")
        assert not rule.head

    def test_safety_head_variable(self):
        with pytest.raises(ParseError):
            parse_rule("p(X).")

    def test_safety_negative_variable(self):
        with pytest.raises(ParseError):
            parse_rule("p :- not q(X).")

    def test_parse_rules_with_comments(self):
        rules = parse_rules("p(a). % fact\nq(X) :- p(X).")
        assert len(rules) == 2


class TestGrounding:
    def test_facts_pass_through(self):
        db = ground_program("p(a). p(b).")
        assert db.vocabulary == {"p(a)", "p(b)"}

    def test_rule_instantiation(self):
        db = ground_program("p(a). q(X) :- p(X).")
        assert "q(a)" in db.vocabulary

    def test_relevance_pruning(self):
        # q(X) :- p(X) should not instantiate X=b when p(b) can never hold.
        db = ground_program("p(a). c(b). q(X) :- p(X).")
        assert "q(b)" not in db.vocabulary

    def test_win_move_semantics_after_grounding(self):
        db = ground_program(
            """
            move(a, b). move(b, c).
            win(X) :- move(X, Y), not win(Y).
            """
        )
        perf = get_semantics("perf").model_set(db)
        (model,) = perf
        assert "win(b)" in model and "win(a)" not in model

    def test_disjunctive_grounding(self):
        db = ground_program("node(a). node(b). red(X) | blue(X) :- node(X).")
        assert "red(a)" in db.vocabulary and "blue(b)" in db.vocabulary
        minimal = get_semantics("egcwa").model_set(db)
        assert len(minimal) == 4  # 2 colours x 2 nodes

    def test_integrity_rules_ground(self):
        db = ground_program(
            """
            node(a). red(X) | blue(X) :- node(X). :- red(X), blue(X).
            """
        )
        assert db.has_integrity_clauses

    def test_extra_constants_extend_domain(self):
        grounder = Grounder(
            parse_rules("p(X) | q(X) :- d(X). d(a)."),
            extra_constants=["b"],
        )
        db = grounder.ground()
        # b is in the domain but d(b) is never derivable, so no clause
        # about p(b) survives the pruning with a satisfied body... the
        # instantiated rule p(b)|q(b) :- d(b) is pruned entirely.
        assert "p(b)" not in db.vocabulary

    def test_tautological_instances_dropped(self):
        db = ground_program("p(a). p(X) :- p(X).")
        assert all(not c.is_tautology() for c in db.clauses)

    def test_variables_without_domain_raise(self):
        from repro.ground.rules import Rule
        from repro.ground.terms import PredicateAtom

        rule = Rule(
            (PredicateAtom("p", ("X",)),),
            (PredicateAtom("d", ("X",)),),
        )
        with pytest.raises(ReproError):
            Grounder([rule]).ground()

    def test_ground_program_round_trips_propositionally(self):
        db = ground_program("e(a, b). r(X, Y) :- e(X, Y).")
        reparsed = parse_database(str(db))
        assert reparsed == db


class TestGroundingProperties:
    def test_propositional_program_grounds_to_itself(self):
        """A program without variables passes through unchanged."""
        from repro.ground import parse_rules, Grounder
        from repro.logic.parser import parse_database

        text = "a | b. c :- a, not d. :- c, d."
        db = Grounder(parse_rules(text)).ground()
        assert db == parse_database(
            "a | b. c :- a, not d. :- c, d."
        )

    def test_grounding_commutes_with_constant_renaming(self):
        """Renaming constants before or after grounding is the same."""
        from repro.ground import ground_program
        from repro.logic.transform import rename_atoms

        text = "e(a, b). e(b, c). r(X, Y) :- e(X, Y). t(X) :- r(X, Y)."
        swapped = text.replace("a", "z")
        direct = ground_program(swapped)
        renamed = rename_atoms(
            ground_program(text),
            lambda atom: atom.replace("a", "z"),
        )
        assert direct == renamed

    def test_ground_semantics_matches_hand_grounding(self):
        """Grounding then DSM equals the hand-written ground program."""
        from repro.ground import ground_program
        from repro.logic.parser import parse_database
        from repro.semantics import get_semantics

        grounded = ground_program(
            "move(a, b). move(b, a). win(X) :- move(X, Y), not win(Y)."
        )
        manual = parse_database(
            """
            move(a,b). move(b,a).
            win(a) :- move(a,b), not win(b).
            win(b) :- move(b,a), not win(a).
            """
        )
        assert grounded == manual
        assert get_semantics("dsm").model_set(grounded) == get_semantics(
            "dsm"
        ).model_set(manual)

    def test_transitive_closure_grounding(self):
        from repro.ground import ground_program
        from repro.semantics import get_semantics

        db = ground_program(
            """
            e(a, b). e(b, c). e(c, d).
            path(X, Y) :- e(X, Y).
            path(X, Z) :- e(X, Y), path(Y, Z).
            """
        )
        egcwa = get_semantics("egcwa")
        assert egcwa.infers_literal(db, "path(a,d)")
        assert egcwa.infers_literal(db, "not path(d,a)")
