"""Tests for the polynomial-hierarchy structure module."""

import pytest

from repro.complexity.classes import CC
from repro.complexity.hierarchy import (
    OracleSignature,
    is_subclass_of,
    log_bound,
    signature_consistent_with,
    strictness_caveat,
)


class TestInclusions:
    @pytest.mark.parametrize(
        "lower,upper",
        [
            (CC.CONSTANT, CC.P),
            (CC.P, CC.NP),
            (CC.P, CC.CONP),
            (CC.P, CC.PI2P),
            (CC.NP, CC.SIGMA2P),
            (CC.CONP, CC.PI2P),
            (CC.CONSTANT, CC.THETA3P),
            (CC.SIGMA2P, CC.THETA3P),
            (CC.PI2P, CC.THETA3P),
        ],
    )
    def test_known_inclusions(self, lower, upper):
        assert is_subclass_of(lower, upper)

    @pytest.mark.parametrize(
        "lower,upper",
        [
            (CC.NP, CC.CONP),
            (CC.CONP, CC.NP),
            (CC.SIGMA2P, CC.PI2P),
            (CC.THETA3P, CC.P),
            (CC.PI2P, CC.NP),
        ],
    )
    def test_non_inclusions(self, lower, upper):
        assert not is_subclass_of(lower, upper)

    def test_reflexive(self):
        for cls in CC:
            assert is_subclass_of(cls, cls)


class TestSignatures:
    def test_p_cell_signature(self):
        sig = OracleSignature(size=10, sat_calls=0)
        assert signature_consistent_with(sig, CC.P)
        assert signature_consistent_with(sig, CC.CONSTANT)
        assert not signature_consistent_with(
            OracleSignature(size=10, sat_calls=1), CC.P
        )

    def test_conp_cell_signature(self):
        sig = OracleSignature(size=10, sat_calls=1)
        assert signature_consistent_with(sig, CC.CONP)
        assert not signature_consistent_with(
            OracleSignature(size=10, sat_calls=50), CC.CONP
        )

    def test_theta_cell_signature(self):
        assert signature_consistent_with(
            OracleSignature(size=8, sat_calls=100, sigma2_calls=4),
            CC.THETA3P,
        )
        assert not signature_consistent_with(
            OracleSignature(size=8, sat_calls=100, sigma2_calls=9),
            CC.THETA3P,
        )

    def test_pi2_admits_anything(self):
        assert signature_consistent_with(
            OracleSignature(size=8, sat_calls=10_000), CC.PI2P
        )

    def test_log_bound_matches_theta_machine(self):
        from repro.complexity.machines import theta_inference
        from repro.logic.parser import parse_formula
        from repro.workloads import exclusive_pairs

        db = exclusive_pairs(3)
        result = theta_inference(db, parse_formula("x1 | y1"))
        assert result.call_bound == log_bound(len(db.vocabulary))


class TestMeasuredProfilesMatchClaims:
    """Bridge test: the actual engines' measured profiles are consistent
    with the tables' claimed classes under the signature rules."""

    def test_ddr_literal_profile(self):
        from repro.complexity.classes import TABLE1, Task
        from repro.complexity.oracles import count_sat_calls
        from repro.semantics import get_semantics
        from repro.workloads import random_positive_db

        db = random_positive_db(6, 7, seed=1)
        with count_sat_calls() as counter:
            get_semantics("ddr").infers_literal(db, "not v1")
        sig = OracleSignature(size=len(db.vocabulary),
                              sat_calls=counter.calls)
        claim = TABLE1[("ddr", Task.LITERAL)]
        assert signature_consistent_with(sig, claim.upper)

    def test_theta_profile(self):
        from repro.complexity.classes import TABLE1, Task
        from repro.complexity.machines import theta_inference
        from repro.logic.parser import parse_formula
        from repro.workloads import random_positive_db

        db = random_positive_db(6, 7, seed=2)
        result = theta_inference(db, parse_formula("v1 | ~v2"))
        sig = OracleSignature(
            size=len(db.vocabulary),
            sat_calls=0,
            sigma2_calls=result.sigma2_calls,
        )
        claim = TABLE1[("gcwa", Task.FORMULA)]
        assert signature_consistent_with(sig, claim.upper)


def test_strictness_caveat_wording():
    assert "open" in strictness_caveat(CC.NP, CC.SIGMA2P)
    assert "not known" in strictness_caveat(CC.SIGMA2P, CC.PI2P)
    assert "equal" in strictness_caveat(CC.P, CC.P)
