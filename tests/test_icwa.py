"""Tests for the Iterated CWA."""

import pytest
from hypothesis import given

from repro.errors import NotStratifiedError
from repro.logic.parser import parse_database, parse_formula
from repro.semantics import get_semantics
from repro.semantics.icwa import icwa_models_by_intersection, priority_levels
from repro.semantics.stratification import require_stratification

from conftest import databases, positive_databases


class TestIcwaBasics:
    def test_trivial_stratification_gives_egcwa(self, simple_db):
        """Paper Thm 4.2: with S = <V>, ICWA coincides with EGCWA."""
        icwa = get_semantics("icwa").model_set(simple_db)
        egcwa = get_semantics("egcwa").model_set(simple_db)
        assert icwa == egcwa

    def test_stratified_negation(self):
        db = parse_database("a :- not b.")
        models = get_semantics("icwa").model_set(db)
        assert {frozenset(m) for m in models} == {frozenset({"a"})}

    def test_unstratified_rejected(self, unstratified_db):
        with pytest.raises(NotStratifiedError):
            get_semantics("icwa").model_set(unstratified_db)

    def test_has_model_is_constant_true_for_stratified(self, stratified_db):
        assert get_semantics("icwa").has_model(stratified_db)

    def test_has_model_raises_for_unstratified(self, unstratified_db):
        with pytest.raises(NotStratifiedError):
            get_semantics("icwa").has_model(unstratified_db)

    def test_explicit_stratification_accepted(self, simple_db):
        stratification = require_stratification(simple_db)
        icwa = get_semantics("icwa", stratification=stratification)
        assert icwa.model_set(simple_db) == get_semantics(
            "egcwa"
        ).model_set(simple_db)

    def test_partition_with_floating_atoms(self):
        db = parse_database("a | z.")
        icwa = get_semantics("icwa", p=["a"], z=["z"])
        models = {frozenset(m) for m in icwa.model_set(db)}
        assert models == {frozenset({"z"})}


class TestPriorityLevels:
    def test_levels_follow_strata(self, stratified_db):
        stratification = require_stratification(stratified_db)
        levels = priority_levels(
            stratification, frozenset(stratified_db.vocabulary)
        )
        assert [sorted(level) for level in levels] == [
            sorted(stratum) for stratum in stratification.strata
        ]

    def test_empty_levels_dropped(self, stratified_db):
        stratification = require_stratification(stratified_db)
        levels = priority_levels(stratification, frozenset({"d"}))
        assert levels == [frozenset({"d"})]


class TestIntersectionCharacterization:
    @given(databases(allow_ic=False, max_clauses=4))
    def test_lexicographic_equals_intersection(self, db):
        """[12, Sec. 6]: iterated ECWA = intersection of level-wise
        ECWAs = lexicographically minimal models."""
        from repro.semantics.stratification import stratify

        stratification = stratify(db)
        if stratification is None:
            return  # not a DSDB: ICWA undefined
        icwa = get_semantics("icwa")
        lex = icwa.model_set(db)
        levels = priority_levels(
            stratification, frozenset(db.vocabulary)
        )
        intersection = icwa_models_by_intersection(db, levels, frozenset())
        assert lex == intersection

    @given(databases(allow_ic=False, max_clauses=4))
    def test_oracle_matches_brute(self, db):
        from repro.semantics.stratification import is_stratified

        if not is_stratified(db):
            return
        formula = parse_formula("a | ~b")
        assert get_semantics("icwa").infers(db, formula) == get_semantics(
            "icwa", engine="brute"
        ).infers(db, formula)

    @given(positive_databases(max_clauses=4))
    def test_positive_icwa_is_egcwa(self, db):
        assert get_semantics("icwa").model_set(db) == get_semantics(
            "egcwa"
        ).model_set(db)
