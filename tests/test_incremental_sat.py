"""Unit tests for the incremental SAT backend.

Covers the selector-literal retraction mechanics (no stale temporary
clauses survive a closed scope, and the scope's clauses are physically
reclaimed rather than left inert), selector recycling, scope nesting and
independence, the process-wide solver pool's checkout/reuse semantics,
and the per-query solver-statistics deltas that sessions report.
"""

from __future__ import annotations

import pytest

from repro.errors import SolverError
from repro.logic.atoms import Literal
from repro.logic.parser import parse_database, parse_formula
from repro.sat.cdcl import CdclSolver
from repro.sat.incremental import (
    SOLVER_POOL,
    IncrementalSatSolver,
    acquire_solver,
    clear_solver_pool,
    pooled_scope,
    release_solver,
)
from repro.session import DatabaseSession


@pytest.fixture(autouse=True)
def fresh_pool():
    clear_solver_pool()
    yield
    clear_solver_pool()


DB = parse_database("a | b. c :- a. c :- b.")


# ----------------------------------------------------------------------
# Scope retraction
# ----------------------------------------------------------------------
class TestScopeRetraction:
    def test_closed_scope_no_longer_constrains(self):
        solver = IncrementalSatSolver(DB)
        with solver.scope() as scope:
            scope.add_unit(Literal.pos("a"))
            scope.add_unit(Literal.neg("b"))
            assert scope.solve()
            assert scope.model(restrict_to=DB.vocabulary) == frozenset(
                {"a", "c"}
            )
        # The retired scope's units must not leak into later queries.
        with solver.scope() as scope:
            scope.add_unit(Literal.neg("a"))
            assert scope.solve(), "stale ~b unit would make this UNSAT"
            assert "b" in scope.model(restrict_to=DB.vocabulary)

    def test_contradictory_scope_leaves_solver_usable(self):
        solver = IncrementalSatSolver(DB)
        with solver.scope() as scope:
            scope.add_unit(Literal.pos("a"))
            scope.add_unit(Literal.neg("a"))
            assert not scope.solve()
        with solver.scope() as scope:
            assert scope.solve(), "contradiction must die with its scope"

    def test_clauses_physically_reclaimed(self):
        solver = IncrementalSatSolver(DB)
        core = solver._sat._core
        baseline = len(core._clauses)
        for _ in range(10):
            with solver.scope() as scope:
                scope.add_formula(parse_formula("~c | (a & b)"))
                scope.solve()
        assert len(core._clauses) == baseline
        assert solver.clauses_reclaimed > 0
        # No surviving clause (input or learned) mentions any selector.
        selector_vars = {
            solver.variables.number(name)
            for name in solver.variables.atoms()
            if name.startswith("__inc")
        }
        for clause in core._clauses + core._learned:
            assert not any(
                abs(lit) in selector_vars for lit in clause.literals
            )

    def test_selectors_recycled_across_scopes(self):
        solver = IncrementalSatSolver(DB)
        for _ in range(50):
            with solver.scope() as scope:
                scope.add_unit(Literal.pos("a"))
                scope.solve()
        # Sequential scopes reuse the same selector variable instead of
        # allocating one dead variable per retired scope.
        assert solver._selector_count <= 2
        assert solver.scopes_retired == 50

    def test_formula_retraction_via_tseitin(self):
        solver = IncrementalSatSolver(DB)
        with solver.scope() as scope:
            scope.add_formula(parse_formula("c"), positive=False)
            assert not scope.solve(), "DB |= c"
        with solver.scope() as scope:
            assert scope.solve(), "~c must have been retracted"

    def test_closed_scope_rejects_new_clauses(self):
        solver = IncrementalSatSolver(DB)
        with solver.scope() as scope:
            pass
        with pytest.raises(SolverError):
            scope.add_unit(Literal.pos("a"))
        with pytest.raises(SolverError):
            scope.solve()


class TestScopeNesting:
    def test_child_enforces_parent(self):
        solver = IncrementalSatSolver(DB)
        with solver.scope() as outer:
            outer.add_unit(Literal.pos("a"))
            with outer.scope() as inner:
                inner.add_unit(Literal.neg("a"))
                assert not inner.solve()
            assert outer.solve(), "child contradiction retracted"

    def test_sibling_scopes_are_independent(self):
        solver = IncrementalSatSolver(DB)
        first = solver.scope().__enter__()
        first.add_unit(Literal.pos("a"))
        with solver.scope() as second:
            second.add_unit(Literal.neg("a"))
            assert second.solve(), "first scope's unit not enforced"
        assert first.solve()
        first.close()


# ----------------------------------------------------------------------
# CDCL clause removal
# ----------------------------------------------------------------------
class TestRemoveClausesWith:
    def test_removes_input_and_watchlist_entries(self):
        core = CdclSolver()
        core.add_clause([-1, 2])
        core.add_clause([-1, 3])
        core.add_clause([2, 3])
        assert core.remove_clauses_with(-1) == 2
        assert len(core._clauses) == 1
        for watchers in core._watches.values():
            for clause in watchers:
                assert -1 not in clause.literals

    def test_falsified_guard_is_rejected(self):
        core = CdclSolver()
        core.add_clause([-1, 2])
        core.add_clause([1])  # level-0 fact: guard literal now false
        with pytest.raises(SolverError):
            core.remove_clauses_with(-1)

    def test_unallocated_literal_is_noop(self):
        core = CdclSolver()
        core.add_clause([1, 2])
        assert core.remove_clauses_with(-99) == 0

    def test_solver_still_correct_after_removal(self):
        core = CdclSolver()
        core.add_clause([1, 2])
        core.add_clause([-3, -1])
        core.add_clause([-3, -2])
        assert not core.solve([3]), "exclusions conflict with [1, 2]"
        assert core.remove_clauses_with(-3) == 2
        assert core.solve([3]), "guarded exclusions removed"
        assert core.solve([1]), "base clause survives"


# ----------------------------------------------------------------------
# Solver pool
# ----------------------------------------------------------------------
class TestSolverPool:
    def test_sequential_acquire_reuses(self):
        key1, s1 = acquire_solver(DB, context=("db",))
        release_solver(key1, s1)
        key2, s2 = acquire_solver(DB, context=("db",))
        release_solver(key2, s2)
        assert s1 is s2
        stats = SOLVER_POOL.stats()
        assert stats["solvers_created"] == 1
        assert stats["solver_reuses"] == 1

    def test_concurrent_checkout_gets_distinct_instances(self):
        key1, s1 = acquire_solver(DB, context=("db",))
        key2, s2 = acquire_solver(DB, context=("db",))
        assert s1 is not s2
        release_solver(key1, s1)
        release_solver(key2, s2)

    def test_reuse_false_never_pools(self):
        with pooled_scope(DB, reuse=False) as scope:
            assert scope.solve()
        stats = SOLVER_POOL.stats()
        assert stats["solvers_pooled"] == 0
        assert stats["solver_reuses"] == 0

    def test_structurally_equal_databases_share_solvers(self):
        other = parse_database("a | b. c :- a. c :- b.")
        with pooled_scope(DB, context=("db",)) as scope:
            scope.solve()
        with pooled_scope(other, context=("db",)) as scope:
            scope.solve()
        assert SOLVER_POOL.stats()["solver_reuses"] == 1

    def test_distinct_contexts_do_not_collide(self):
        with pooled_scope(DB, context=("db",)) as scope:
            scope.solve()
        with pooled_scope(DB, context=("other",)) as scope:
            scope.solve()
        stats = SOLVER_POOL.stats()
        assert stats["solvers_created"] == 2
        assert stats["solver_reuses"] == 0

    def test_warm_and_cold_answers_agree(self):
        query = parse_formula("c")
        verdicts = []
        for _ in range(3):
            with pooled_scope(DB, context=("db",)) as scope:
                scope.add_formula(query, positive=False)
                verdicts.append(not scope.solve())
        assert verdicts == [True, True, True]


# ----------------------------------------------------------------------
# Per-query statistics deltas
# ----------------------------------------------------------------------
class TestSessionSolverStats:
    def test_answers_carry_per_query_deltas(self):
        session = DatabaseSession(DB, default_semantics="egcwa")
        first = session.ask("~a | ~b")
        second = session.ask("c")
        assert first.solver_stats is not None
        assert second.solver_stats is not None
        # Each query's delta reflects only its own spend: the session
        # total is the sum of the deltas, not the pool's lifetime count.
        totals = session.stats()
        for name in ("solve_calls", "propagations"):
            assert totals[f"solver_{name}"] == (
                first.solver_stats[name] + second.solver_stats[name]
            )

    def test_second_query_delta_excludes_first(self):
        session = DatabaseSession(DB, default_semantics="egcwa")
        first = session.ask("~a | ~b")
        second = session.ask("~a | ~b")
        assert first.solver_stats["solve_calls"] > 0
        # A warm (or memoized) second run never reports the lifetime
        # total, which would be at least the two queries combined.
        assert second.solver_stats["solve_calls"] < (
            first.solver_stats["solve_calls"]
            + second.solver_stats["solve_calls"]
            + 1
        )
        assert session.stats()["queries_answered"] == 2
