"""Tests for repro.logic.interpretation."""

import pytest

from repro.errors import ReproError
from repro.logic.formula import FALSE3, TRUE3, UNDEF3, And, Not, Var
from repro.logic.interpretation import (
    Interpretation,
    ThreeValuedInterpretation,
    all_interpretations,
    all_three_valued,
    interp,
)


class TestInterpretation:
    def test_is_a_frozenset(self):
        model = interp("a", "b")
        assert isinstance(model, frozenset)
        assert model == {"a", "b"}

    def test_satisfies(self):
        assert interp("a").satisfies(Var("a") | Var("b"))
        assert not interp("a").satisfies(And(Var("a"), Var("b")))

    def test_str_is_sorted(self):
        assert str(interp("b", "a")) == "{a, b}"

    def test_set_operations_work(self):
        assert interp("a", "b") - {"a"} == {"b"}

    def test_all_interpretations_counts(self):
        models = list(all_interpretations(["a", "b", "c"]))
        assert len(models) == 8
        assert len(set(models)) == 8

    def test_all_interpretations_empty_vocabulary(self):
        assert list(all_interpretations([])) == [Interpretation()]


class TestThreeValued:
    def test_value_levels(self):
        i = ThreeValuedInterpretation({"a"}, {"a", "b"})
        assert i.value("a") == TRUE3
        assert i.value("b") == UNDEF3
        assert i.value("c") == FALSE3

    def test_true_must_be_subset_of_possible(self):
        with pytest.raises(ReproError):
            ThreeValuedInterpretation({"a"}, set())

    def test_undefined_and_totality(self):
        i = ThreeValuedInterpretation({"a"}, {"a", "b"})
        assert i.undefined == {"b"}
        assert not i.is_total
        assert ThreeValuedInterpretation.total({"a"}).is_total

    def test_to_total_requires_totality(self):
        with pytest.raises(ReproError):
            ThreeValuedInterpretation(set(), {"a"}).to_total()
        assert ThreeValuedInterpretation.total({"a"}).to_total() == {"a"}

    def test_satisfies_requires_degree_one(self):
        i = ThreeValuedInterpretation(set(), {"a"})
        assert not i.satisfies(Var("a"))
        assert i.degree(Var("a")) == UNDEF3
        assert i.degree(Not(Var("a"))) == UNDEF3

    def test_truth_ordering(self):
        low = ThreeValuedInterpretation(set(), {"a"})
        high = ThreeValuedInterpretation({"a"}, {"a"})
        assert low.leq(high) and low.lt(high)
        assert not high.leq(low)
        assert low.leq(low) and not low.lt(low)

    def test_ordering_is_pointwise(self):
        left = ThreeValuedInterpretation({"a"}, {"a"})
        right = ThreeValuedInterpretation({"b"}, {"b"})
        assert not left.leq(right) and not right.leq(left)

    def test_equality_and_hash(self):
        a = ThreeValuedInterpretation({"a"}, {"a", "b"})
        b = ThreeValuedInterpretation({"a"}, {"a", "b"})
        assert a == b and hash(a) == hash(b)

    def test_str_shows_degrees(self):
        i = ThreeValuedInterpretation({"a"}, {"a", "b"})
        assert str(i) == "{a=1, b=1/2}"

    def test_all_three_valued_counts(self):
        interpretations = list(all_three_valued(["a", "b"]))
        assert len(interpretations) == 9
        assert len(set(interpretations)) == 9

    def test_valuation_mapping(self):
        i = ThreeValuedInterpretation({"a"}, {"a", "b"})
        assert i.valuation() == {"a": TRUE3, "b": UNDEF3}
