"""Bitset kernel invariants: packing, equivalence, sweeps, fast paths.

Five families pin the PR 8 kernel layer to the historical pure path:

* **AtomTable round-trip** — hypothesis-quantified pack/unpack bijection
  and the mask-rank = enumeration-rank identity the whole kernel rests
  on;
* **mask vs. frozenset primitives** — clause satisfaction, model
  checking and proper-subset tests agree with the ``Clause`` /
  ``Interpretation`` originals on random databases;
* **bitset vs. pure enumeration** — ``all_models`` /
  ``minimal_models_brute`` / ``pz_minimal_models_brute`` produce
  *identical sequences* (order included) and identical node accounting
  under :func:`force_kernel` either way;
* **batched sweeps** — ``free_for_negation_sweep`` matches the brute
  ``ff(DB)`` closure with exactly |V| Σ₂ᵖ dispatches, and the PZ sweep
  matches brute CCWA free atoms;
* **supported fast path & escape hatch** — the tight-stratified
  ``supported`` plan dispatches to ``stratified-perfect`` and agrees
  with brute, non-tight databases stay on ``default``, and
  ``REPRO_KERNEL=pure`` flips :func:`kernel_enabled` without changing
  any answer.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.cost import DEFAULT_PROCEDURE, STRATIFIED_PROCEDURE
from repro.engine import DIFFERENTIAL_ENGINES, differential_stack
from repro.engine.cache import ENGINE_CACHE
from repro.kernel import (
    AtomTable,
    PackedDatabase,
    atom_table_for,
    clause_satisfied,
    force_kernel,
    is_proper_submask,
    kernel_enabled,
    packed_database_for,
    product_or_masks,
    subsets_in_table_order,
)
from repro.logic.atoms import Literal
from repro.logic.formula import Var
from repro.logic.interpretation import Interpretation, all_interpretations
from repro.logic.parser import parse_database
from repro.models.enumeration import (
    all_models,
    minimal_models_brute,
    pz_minimal_models_brute,
)
from repro.obs.accounting import observe
from repro.sat.minimal import MinimalModelSolver, PZMinimalModelSolver
from repro.semantics import get_semantics
from repro.semantics.gcwa import free_for_negation_brute

from conftest import ATOMS, databases, positive_databases, random_small_db

#: Random subsets of the shared atom pool.
atom_sets = st.lists(st.sampled_from(ATOMS), unique=True).map(frozenset)


# ----------------------------------------------------------------------
# AtomTable: pack/unpack bijection and rank identity
# ----------------------------------------------------------------------
@given(atom_sets, atom_sets)
def test_atom_table_roundtrip(vocabulary, subset):
    table = AtomTable(vocabulary | subset)
    packed = table.pack(subset)
    assert table.unpack(packed) == Interpretation(subset)
    assert list(table.iter_atoms(packed)) == sorted(subset)
    assert packed | table.full_mask == table.full_mask


@given(atom_sets)
def test_mask_value_is_enumeration_rank(vocabulary):
    """Packed-mask numeric order IS ``all_interpretations`` order —
    the identity that makes bitset and pure output sequences equal."""
    table = AtomTable(vocabulary)
    ranks = [
        table.pack(interp)
        for interp in all_interpretations(sorted(vocabulary))
    ]
    assert ranks == list(range(1 << len(vocabulary)))


def test_subsets_in_table_order_matches_pure_counter():
    table = AtomTable({"a", "b", "c", "d"})
    free = {"d", "b"}
    got = list(subsets_in_table_order(table, free))
    pure = list(all_interpretations(sorted(free)))
    assert got == pure


# ----------------------------------------------------------------------
# Mask primitives vs. the frozenset originals
# ----------------------------------------------------------------------
@given(databases(max_clauses=4), atom_sets)
def test_packed_clause_satisfaction_matches(db, model_atoms):
    table = AtomTable(db.vocabulary | model_atoms)
    packed = PackedDatabase(db, table)
    interp = Interpretation(model_atoms)
    mask = table.pack(model_atoms)
    for clause, triple in zip(db, packed.clauses):
        assert clause_satisfied(triple, mask) == clause.satisfied_by(
            interp
        ), clause
    assert packed.is_model(mask) == all(
        c.satisfied_by(interp) for c in db
    )


@given(atom_sets, atom_sets)
def test_is_proper_submask_matches_set_order(left, right):
    table = AtomTable(left | right)
    assert is_proper_submask(
        table.pack(left), table.pack(right)
    ) == (left < right)


def test_product_or_masks_is_disjoint_union():
    table = AtomTable({"a", "b", "x", "y"})
    parts = [
        [table.pack(s) for s in ({"a"}, {"b"})],
        [table.pack(s) for s in (set(), {"x", "y"})],
    ]
    got = {frozenset(table.unpack(m)) for m in product_or_masks(parts)}
    assert got == {
        frozenset({"a"}), frozenset({"a", "x", "y"}),
        frozenset({"b"}), frozenset({"b", "x", "y"}),
    }


def test_memoized_accessors_share_one_table():
    db = parse_database("a | b. c :- a.")
    ENGINE_CACHE.clear()
    assert atom_table_for(db) is atom_table_for(db)
    assert packed_database_for(db).table is atom_table_for(db)


# ----------------------------------------------------------------------
# Bitset vs. pure enumeration: identical sequences, identical accounting
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(12))
def test_enumerators_agree_across_kernels(seed):
    db = random_small_db(seed)
    runs = {}
    for mode in ("bitset", "pure"):
        ENGINE_CACHE.clear()
        with force_kernel(mode), observe() as window:
            runs[mode] = (
                list(all_models(db)),
                list(minimal_models_brute(db)),
                window.as_dict(),
            )
    assert runs["bitset"] == runs["pure"], seed


@pytest.mark.parametrize("seed", range(8))
def test_pz_enumerator_agrees_across_kernels(seed):
    db = random_small_db(seed, allow_neg=False, allow_ic=False)
    atoms = sorted(db.vocabulary)
    p, z = atoms[:2], atoms[2:3]
    runs = {}
    for mode in ("bitset", "pure"):
        ENGINE_CACHE.clear()
        with force_kernel(mode), observe() as window:
            runs[mode] = (
                list(pz_minimal_models_brute(db, p, z)),
                window.as_dict(),
            )
    assert runs["bitset"] == runs["pure"], seed


# ----------------------------------------------------------------------
# Batched sweeps: answers and accounting
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(10))
def test_ff_sweep_matches_brute_closure(seed):
    db = random_small_db(seed, allow_ic=False)
    expected = free_for_negation_brute(db)
    with observe() as window:
        with MinimalModelSolver(db) as engine:
            got = engine.free_for_negation_sweep()
    assert got == expected, seed
    # One Σ₂ᵖ dispatch per vocabulary atom — the same count the
    # per-atom closure reported, so certifier envelopes are unchanged.
    assert window.as_dict()["sigma2_dispatches"] == len(db.vocabulary)


def test_ff_sweep_np_calls_beat_per_atom_path_in_aggregate():
    """The batched sweep answers identically to the per-atom
    ``find_minimal_satisfying`` loop everywhere, and its aggregate
    NP-call total over a seed corpus is strictly lower (shared blocks
    and learned clauses; individual databases may differ by a few calls
    either way since the two paths can surface different candidate
    models to shrink)."""
    sweep_total = loop_total = 0
    for seed in range(20):
        db = random_small_db(seed, allow_ic=False)
        with observe() as sweep_window:
            with MinimalModelSolver(db) as engine:
                swept = engine.free_for_negation_sweep()
        with observe() as loop_window:
            with MinimalModelSolver(db) as engine:
                looped = frozenset(
                    atom
                    for atom in db.vocabulary
                    if engine.find_minimal_satisfying(Var(atom)) is None
                )
        assert swept == looped, seed
        sweep_total += sweep_window.as_dict()["np_calls"]
        loop_total += loop_window.as_dict()["np_calls"]
    assert sweep_total < loop_total, (sweep_total, loop_total)


@pytest.mark.parametrize("seed", range(8))
def test_pz_sweep_matches_brute_free_atoms(seed):
    db = random_small_db(seed, allow_neg=False, allow_ic=False)
    atoms = sorted(db.vocabulary)
    p, z = atoms[:2], atoms[2:3]
    models = pz_minimal_models_brute(db, p, z)
    expected = frozenset(
        a for a in p if not any(a in m for m in models)
    )
    with observe() as window:
        with PZMinimalModelSolver(db, p, z) as solver:
            got = solver.free_p_atoms_sweep()
    assert got == expected, seed
    assert window.as_dict()["sigma2_dispatches"] == len(p)


# ----------------------------------------------------------------------
# Differential kernel leg
# ----------------------------------------------------------------------
def test_differential_stack_has_kernel_leg():
    assert DIFFERENTIAL_ENGINES[-1] == "kernel"
    stack = differential_stack("gcwa")
    assert len(stack) == len(DIFFERENTIAL_ENGINES)
    assert stack[-1].engine == "kernel"
    db = parse_database("a | b. c :- a.")
    assert stack[-1].model_set(db) == stack[0].model_set(db)


def test_kernel_leg_runs_opposite_representation():
    leg = differential_stack("egcwa")[-1]
    db = parse_database("a | b.")
    seen = []
    original = leg._inner.model_set

    def spying(inner_db):
        seen.append(kernel_enabled())
        return original(inner_db)

    leg._inner.model_set = spying
    try:
        with force_kernel("bitset"):
            leg.model_set(db)
        with force_kernel("pure"):
            leg.model_set(db)
    finally:
        leg._inner.model_set = original
    assert seen == [False, True]


# ----------------------------------------------------------------------
# Supported-semantics fast path
# ----------------------------------------------------------------------
TIGHT_DBS = (
    "win1 :- not win2. win2 :- not win3. win3.",
    "a. b :- a. c :- b, not d.",
    "p1. p2 :- p1. p3 :- p2.",
)


@pytest.mark.parametrize("text", TIGHT_DBS)
def test_supported_fast_path_differential(text):
    """Tight stratified normal databases: the planner dispatches
    ``supported`` to the stratified-perfect procedure (Fages: tight ⇒
    supported = stable = perfect) and agrees with brute and oracle."""
    db = parse_database(text)
    planned = get_semantics("supported", engine="planned")
    plan = planned.plan_for(db, "model_set")
    assert plan.procedure == STRATIFIED_PROCEDURE, text
    brute = get_semantics("supported", engine="brute")
    oracle = get_semantics("supported", engine="oracle")
    assert (
        planned.model_set(db)
        == brute.model_set(db)
        == oracle.model_set(db)
    )
    literal = Literal.pos(sorted(db.vocabulary)[0])
    assert (
        planned.infers_literal(db, literal)
        == brute.infers_literal(db, literal)
    )


def test_supported_fast_path_excludes_self_loop():
    """``a :- a.`` is stratified but not tight: supported models
    ({} and {a}) differ from the perfect model ({}), so the gate must
    keep it on the default procedure."""
    db = parse_database("a :- a.")
    planned = get_semantics("supported", engine="planned")
    assert planned.plan_for(db, "model_set").procedure == (
        DEFAULT_PROCEDURE
    )
    brute = get_semantics("supported", engine="brute")
    assert planned.model_set(db) == brute.model_set(db)
    assert len(brute.model_set(db)) == 2


# ----------------------------------------------------------------------
# Escape hatch
# ----------------------------------------------------------------------
def test_repro_kernel_env_escape_hatch(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert kernel_enabled()
    monkeypatch.setenv("REPRO_KERNEL", "pure")
    assert not kernel_enabled()
    monkeypatch.setenv("REPRO_KERNEL", "PURE")
    assert not kernel_enabled()
    monkeypatch.setenv("REPRO_KERNEL", "bitset")
    assert kernel_enabled()
    # force_kernel wins over the environment in either direction.
    with force_kernel("pure"):
        assert not kernel_enabled()
    monkeypatch.setenv("REPRO_KERNEL", "pure")
    with force_kernel("bitset"):
        assert kernel_enabled()


def test_pure_mode_answers_are_unchanged(monkeypatch):
    db = parse_database("a | b. c :- a. d :- b, not c.")
    bitset_models = get_semantics("gcwa", engine="brute").model_set(db)
    monkeypatch.setenv("REPRO_KERNEL", "pure")
    ENGINE_CACHE.clear()
    assert get_semantics("gcwa", engine="brute").model_set(db) == (
        bitset_models
    )


def test_force_kernel_rejects_unknown_mode():
    with pytest.raises(ValueError):
        with force_kernel("simd"):
            pass
