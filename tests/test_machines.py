"""Tests for the oracle machinery (repro.complexity)."""

import math

import pytest
from hypothesis import given, settings

from repro.complexity.machines import linear_inference, theta_inference
from repro.complexity.oracles import (
    OracleProfile,
    Sigma2Oracle,
    count_sat_calls,
    profile,
)
from repro.logic.formula import Not, Var
from repro.logic.parser import parse_database, parse_formula
from repro.semantics import get_semantics

from conftest import databases, positive_databases


class TestCountSatCalls:
    def test_counts_nested_calls(self, simple_db):
        with count_sat_calls() as counter:
            get_semantics("egcwa").infers(simple_db, parse_formula("a"))
        assert counter.calls >= 1

    def test_zero_for_pure_python(self):
        with count_sat_calls() as counter:
            sum(range(10))
        assert counter.calls == 0

    def test_nesting_is_additive(self, simple_db):
        with count_sat_calls() as outer:
            with count_sat_calls() as inner:
                get_semantics("egcwa").has_model(
                    parse_database("a. :- a.")
                )
            baseline = inner.calls
            get_semantics("egcwa").has_model(parse_database("a. :- a."))
        assert outer.calls == 2 * baseline


class TestSigma2Oracle:
    def test_query_counts_once(self, simple_db):
        oracle = Sigma2Oracle()
        assert oracle.query(simple_db, Var("c"))
        assert not oracle.query(simple_db, parse_formula("b & c"))
        assert oracle.queries == 2
        assert oracle.inner_sat_calls >= 2

    def test_entails_is_complement(self, simple_db):
        # MM(simple_db) = {{b}, {a,c}}: ~a | c holds in both, c does not.
        oracle = Sigma2Oracle()
        assert oracle.entails(simple_db, parse_formula("~a | c"))
        assert not oracle.entails(simple_db, parse_formula("c"))

    def test_pz_query(self):
        db = parse_database("a | z.")
        oracle = Sigma2Oracle()
        assert not oracle.query(db, Var("a"), p={"a"}, z={"z"})

    def test_witness_returns_model(self, simple_db):
        oracle = Sigma2Oracle()
        witness = oracle.witness(simple_db, Var("c"))
        assert witness == {"a", "c"}


class TestThetaInference:
    def test_agrees_with_brute_gcwa(self, simple_db):
        brute = get_semantics("gcwa", engine="brute")
        for text in ("~a | ~b", "a | b", "c -> a", "~c"):
            formula = parse_formula(text)
            result = theta_inference(simple_db, formula)
            assert result.inferred == brute.infers(simple_db, formula)

    def test_call_bound_is_logarithmic(self, simple_db):
        result = theta_inference(simple_db, parse_formula("a | b"))
        n = len(simple_db.vocabulary)
        assert result.call_bound == math.ceil(math.log2(n + 1)) + 1
        assert result.sigma2_calls <= result.call_bound

    def test_witness_count_is_sstar_size(self, simple_db):
        # All three atoms occur in some minimal model ({b}, {a,c}).
        result = theta_inference(simple_db, parse_formula("a"))
        assert result.witness_count == 3

    def test_empty_sstar(self):
        db = parse_database("a :- b. b :- a.")  # empty minimal model
        result = theta_inference(db, parse_formula("~a & ~b"))
        assert result.witness_count == 0
        assert result.inferred

    def test_ccwa_partition(self):
        db = parse_database("a | z.")
        result = theta_inference(
            db, parse_formula("~a"), p={"a"}, z={"z"}
        )
        assert result.inferred
        assert result.witness_count == 0

    @given(positive_databases(max_clauses=4))
    @settings(max_examples=10)
    def test_matches_brute_on_random_dbs(self, db):
        formula = parse_formula("~a | (b & ~c)")
        result = theta_inference(db, formula)
        expected = get_semantics("gcwa", engine="brute").infers(db, formula)
        assert result.inferred == expected
        assert result.sigma2_calls <= result.call_bound

    @given(databases(max_clauses=3))
    @settings(max_examples=6)
    def test_matches_brute_with_ics(self, db):
        formula = parse_formula("a | ~b")
        result = theta_inference(db, formula)
        expected = get_semantics("gcwa", engine="brute").infers(db, formula)
        assert result.inferred == expected


class TestLinearInference:
    def test_agrees_with_theta(self, simple_db):
        for text in ("~a | ~b", "a | b", "~c"):
            formula = parse_formula(text)
            assert (
                linear_inference(simple_db, formula).inferred
                == theta_inference(simple_db, formula).inferred
            )

    def test_linear_call_count(self, simple_db):
        result = linear_inference(simple_db, parse_formula("a"))
        assert result.sigma2_calls == len(simple_db.vocabulary)
        assert result.call_bound == len(simple_db.vocabulary) + 1

    def test_theta_uses_fewer_oracle_calls_at_scale(self):
        from repro.workloads import exclusive_pairs

        db = exclusive_pairs(4)  # 8 atoms
        formula = parse_formula("x1 | y1")
        theta = theta_inference(db, formula)
        linear = linear_inference(db, formula)
        assert theta.inferred == linear.inferred
        assert theta.sigma2_calls < linear.sigma2_calls


class TestProfile:
    def test_profile_records_calls(self, simple_db):
        record = profile(
            get_semantics("egcwa").infers, simple_db, parse_formula("a | b")
        )
        assert isinstance(record, OracleProfile)
        assert record.answer is True
        assert record.sat_calls >= 1

    def test_render(self):
        assert "SAT-calls" in OracleProfile(answer=True, sat_calls=3).render()
