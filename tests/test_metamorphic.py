"""Metamorphic contracts of the adversarial mutation catalogue.

Every metamorphic mutator in :mod:`repro.adversary.mutators` documents a
*preservation contract*: the set of semantics under which the mutant's
answers (to queries over the original vocabulary, carried through the
mutation's ``query_map``) must equal the original's.  This suite is the
contract's enforcement:

* hypothesis-driven preservation properties, one test per mutator, on
  the cheap two-engine pair (brute ground truth + fragment-planned) by
  default and across **all five** differential engines in the ``slow``
  variants;
* intended-fragment tests for every boundary mutator: the mutant must
  land *just across* the documented lattice edge per
  :mod:`repro.analysis.fragment`.

A failing preservation property here means either a mutator's contract
overclaims (fix the catalogue) or an engine is genuinely wrong on one of
the two databases (a divergence the hunter would also flag) — both are
bugs worth a red build.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.mutators import (
    MUTATORS_BY_NAME,
    applicable_semantics,
    boundary_mutators,
    boundary_target_met,
    fresh_atom,
    metamorphic_mutators,
    rename_formula,
)
from repro.analysis import fragment_of
from repro.analysis.fragment import fragment_profile
from repro.engine import DIFFERENTIAL_ENGINES
from repro.logic.atoms import Literal
from repro.logic.parser import parse_database, parse_formula
from repro.semantics import get_semantics
from repro.workloads import random_horn_db, random_query_formula

from conftest import databases, positive_databases

#: Cheap engine pair for the default (tier-1) property run: the brute
#: enumerator is ground truth, the planned engine exercises the most
#: dispatch logic per query.
FAST_ENGINES = ("brute", "planned")

#: PDSM's brute path enumerates 3^|V| partial interpretations; skip it
#: when a mutation widened the vocabulary past this.
_PDSM_ATOM_CEILING = 7


def _contract_semantics(db, mutation):
    """The semantics the contract promises AND both sides support."""
    names = [
        n for n in mutation.preserves
        if n in applicable_semantics(db)
        and n in applicable_semantics(mutation.db)
    ]
    if len(mutation.db.vocabulary) > _PDSM_ATOM_CEILING:
        names = [n for n in names if n != "pdsm"]
    return names


def assert_preservation(db, mutation, engines=FAST_ENGINES, seed=0):
    """Assert the mutation's documented contract on ``db``."""
    vocabulary = sorted(db.vocabulary)
    query = random_query_formula(vocabulary, depth=2, seed=seed)
    atom = vocabulary[seed % len(vocabulary)]
    literals = [Literal.pos(atom), Literal.neg(atom)]
    for name in _contract_semantics(db, mutation):
        for engine in engines:
            instance = get_semantics(name, engine=engine)
            tag = (mutation.mutator, name, engine)
            assert instance.infers(db, query) == instance.infers(
                mutation.db, mutation.map_query(query)
            ), (tag, "infers", str(query))
            for literal in literals:
                mapped = Literal(
                    mutation.map_atom(literal.atom), literal.positive
                )
                assert instance.infers_literal(
                    db, literal
                ) == instance.infers_literal(mutation.db, mapped), (
                    tag, "infers_literal", str(literal),
                )
            assert instance.has_model(db) == instance.has_model(
                mutation.db
            ), (tag, "has_model")
            if mutation.preserves_model_set:
                assert instance.model_set(db) == instance.model_set(
                    mutation.db
                ), (tag, "model_set")


def _apply(name, db, seed=0):
    mutator = MUTATORS_BY_NAME[name]
    profile = fragment_profile(db)
    if not mutator.applicable(db, profile):
        return None
    return mutator.apply(db, random.Random(f"meta:{name}:{seed}"))


# ----------------------------------------------------------------------
# Per-mutator preservation properties (hypothesis, fast engine pair)
# ----------------------------------------------------------------------
@settings(max_examples=10)
@given(db=databases(), seed=st.integers(min_value=0, max_value=10**6))
def test_rename_preserves_all_semantics(db, seed):
    mutation = _apply("rename", db, seed)
    assert mutation is not None
    assert_preservation(db, mutation, seed=seed)


@given(db=databases(), seed=st.integers(min_value=0, max_value=10**6))
def test_reorder_roundtrip_is_identity(db, seed):
    mutation = _apply("reorder", db, seed)
    assert mutation is not None
    # The serialize -> shuffle -> re-parse round trip must reproduce the
    # database *structurally*, which implies its contract (identical
    # databases cannot answer differently); the answer path itself is
    # exercised by test_preservation_all_engines.
    assert mutation.db == db


@given(db=databases(), seed=st.integers(min_value=0, max_value=10**6))
def test_duplicate_insertion_collapses(db, seed):
    mutation = _apply("duplicate", db, seed)
    assert mutation is not None
    assert mutation.db == db


@settings(max_examples=10)
@given(db=databases(), seed=st.integers(min_value=0, max_value=10**6))
def test_tautology_pad_preserves_all_semantics(db, seed):
    mutation = _apply("tautology_pad", db, seed)
    assert mutation is not None
    assert len(mutation.db.vocabulary) == len(db.vocabulary) + 1
    assert_preservation(db, mutation, seed=seed)


@settings(max_examples=10)
@given(
    db=positive_databases(max_clauses=2),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_component_clone_preserves_answers(db, seed):
    trimmed = db.restricted_to_occurring_atoms()
    # Cloning doubles the vocabulary and the brute ground truth pays
    # 2^|V| (3^|V| for PDSM) per answer; keep the fast lane tiny and
    # leave larger clones to the slow all-engine sweep.
    if len(trimmed.vocabulary) > 3:
        return
    mutation = _apply("component_clone", trimmed, seed)
    if mutation is None:
        return
    assert_preservation(trimmed, mutation, seed=seed)


@settings(max_examples=10)
@given(db=databases(), seed=st.integers(min_value=0, max_value=10**6))
def test_head_shift_preserves_model_based_semantics(db, seed):
    mutation = _apply("head_shift", db, seed)
    if mutation is None:  # no negation to shift
        return
    assert not mutation.db.has_negation
    assert_preservation(db, mutation, seed=seed)


@settings(max_examples=10)
@given(db=databases(), seed=st.integers(min_value=0, max_value=10**6))
def test_body_split_preserves_answers(db, seed):
    mutation = _apply("body_split", db, seed)
    if mutation is None:  # no clause with a 2+ atom positive body
        return
    assert len(mutation.db.vocabulary) == len(db.vocabulary) + 1
    assert_preservation(db, mutation, seed=seed)


# ----------------------------------------------------------------------
# Slow variants: the same contracts across all five engines
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize(
    "name", [m.name for m in metamorphic_mutators()]
)
def test_preservation_all_engines(name):
    for seed in range(8):
        db = random_horn_db(3, 4, seed=seed) if seed % 2 else (
            parse_database("a | b. c :- a. d :- b, not c. e :- c, d.")
        )
        mutation = _apply(name, db, seed)
        if mutation is None:
            continue
        assert_preservation(
            db, mutation, engines=DIFFERENTIAL_ENGINES, seed=seed
        )


# ----------------------------------------------------------------------
# Boundary mutators: intended-fragment tests
# ----------------------------------------------------------------------
def test_widen_head_lands_barely_non_horn():
    for seed in range(10):
        db = random_horn_db(4, 5, seed=seed)
        mutation = _apply("widen_head", db, seed)
        assert mutation is not None
        before, after = fragment_profile(db), fragment_profile(mutation.db)
        assert fragment_of(db) in ("definite", "horn")
        assert fragment_of(mutation.db) not in ("definite", "horn")
        assert not after.is_horn
        assert after.disjunctive_clauses == 1
        assert boundary_target_met("non-horn", before, after)


def test_close_head_cycle_lands_barely_non_hcf():
    db = parse_database("a | b. c :- a. c :- b.")
    mutation = _apply("close_head_cycle", db)
    assert mutation is not None
    before, after = fragment_profile(db), fragment_profile(mutation.db)
    assert before.head_cycle_free
    assert not after.head_cycle_free
    assert after.negation_free  # still the deductive regime
    assert boundary_target_met("non-hcf", before, after)


def test_break_stratification_lands_unstratified():
    db = parse_database("a | b. c :- a, not b.")
    mutation = _apply("break_stratification", db)
    assert mutation is not None
    before, after = fragment_profile(db), fragment_profile(mutation.db)
    assert before.is_stratified
    assert not after.is_stratified
    assert boundary_target_met("unstratified", before, after)
    # The loop is disjoint: the original clauses are untouched.
    assert db.clauses <= mutation.db.clauses


def test_every_boundary_mutator_has_a_target():
    for mutator in boundary_mutators():
        assert mutator.target is not None
        assert mutator.preserves == ()  # boundary mutators claim nothing


def test_every_metamorphic_mutator_documents_a_contract():
    for mutator in metamorphic_mutators():
        assert mutator.preserves, mutator.name
        assert mutator.target is None


# ----------------------------------------------------------------------
# Helpers used by the contracts
# ----------------------------------------------------------------------
def test_rename_formula_walks_every_connective():
    formula = parse_formula("(a & ~b) | (c -> (d <-> ~a))")
    renamed = rename_formula(formula, {"a": "x", "d": "y"})
    assert renamed == parse_formula("(x & ~b) | (c -> (y <-> ~x))")


def test_fresh_atom_avoids_vocabulary():
    db = parse_database("pad0. pad1 :- pad0.")
    assert fresh_atom(db, prefix="pad") == "pad2"
