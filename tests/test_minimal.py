"""Tests for the minimal-model machinery (repro.sat.minimal)."""

import pytest
from hypothesis import given

from repro.logic.formula import Not, Var
from repro.logic.parser import parse_database, parse_formula
from repro.models.enumeration import (
    minimal_models_brute,
    prioritized_minimal_models_brute,
    pz_minimal_models_brute,
)
from repro.sat.minimal import (
    MinimalModelSolver,
    PrioritizedMinimalModelSolver,
    PZMinimalModelSolver,
    find_minimal_model,
    is_minimal_model,
    minimal_models,
)

from conftest import databases, positive_databases


class TestMinimalModels:
    def test_simple_db(self, simple_db):
        assert {frozenset(m) for m in minimal_models(simple_db)} == {
            frozenset({"b"}),
            frozenset({"a", "c"}),
        }

    def test_inconsistent_db_has_none(self):
        db = parse_database("a. :- a.")
        assert minimal_models(db) == []
        assert find_minimal_model(db) is None

    def test_find_minimal_is_minimal(self, simple_db):
        model = find_minimal_model(simple_db)
        assert is_minimal_model(simple_db, model)

    def test_is_minimal_rejects_non_models(self, simple_db):
        assert not is_minimal_model(simple_db, {"a"})  # not even a model

    def test_is_minimal_rejects_supersets(self, simple_db):
        assert not is_minimal_model(simple_db, {"a", "b", "c"})

    def test_max_models_cap(self):
        db = parse_database("a | b. c | d.")
        assert len(minimal_models(db, max_models=3)) == 3

    def test_empty_model_unique_minimal(self):
        db = parse_database("a :- b.")
        assert [set(m) for m in minimal_models(db)] == [set()]

    @given(databases())
    def test_matches_brute_force(self, db):
        fast = {frozenset(m) for m in minimal_models(db)}
        slow = {frozenset(m) for m in minimal_models_brute(db)}
        assert fast == slow

    @given(databases())
    def test_shrink_reaches_minimal(self, db):
        from repro.models.enumeration import all_models

        engine = MinimalModelSolver(db)
        for model in all_models(db)[:4]:
            shrunk = engine.shrink(model)
            assert shrunk <= model
            assert engine.is_minimal(shrunk)


class TestFindMinimalSatisfying:
    def test_finds_witness(self, simple_db):
        engine = MinimalModelSolver(simple_db)
        witness = engine.find_minimal_satisfying(Var("c"))
        assert witness == {"a", "c"}

    def test_none_when_no_minimal_witness(self, simple_db):
        engine = MinimalModelSolver(simple_db)
        # b & c never holds in a minimal model ({b} and {a,c} are all).
        assert engine.find_minimal_satisfying(
            parse_formula("b & c")
        ) is None

    def test_condition_with_helper_atoms(self, simple_db):
        engine = MinimalModelSolver(simple_db)
        # 'helper' is outside the universe; existentially quantified.
        witness = engine.find_minimal_satisfying(
            parse_formula("helper & (helper -> b)")
        )
        assert witness == {"b"}

    @given(databases())
    def test_entails_matches_brute(self, db):
        formula = parse_formula("a | ~b")
        fast = MinimalModelSolver(db).entails(formula)
        slow = all(
            m.satisfies(formula) for m in minimal_models_brute(db)
        )
        assert fast == slow


class TestPZMinimal:
    def test_floating_atoms_do_not_matter(self):
        # Minimize a, float z: minimal requires ~a; z free.
        db = parse_database("a | z.")
        solver = PZMinimalModelSolver(db, p={"a"}, z={"z"})
        models = {frozenset(m) for m in solver.iter_minimal_models()}
        assert models == {frozenset({"z"}), frozenset({"a", "z"})} or \
            models == {frozenset({"z"})}
        # Canonical answer via brute force:
        brute = {frozenset(m) for m in pz_minimal_models_brute(db, {"a"}, {"z"})}
        assert models == brute

    def test_fixed_atoms_partition_model_space(self):
        db = parse_database("a | q.")
        solver = PZMinimalModelSolver(db, p={"a"}, z=set())
        # q fixed: for q true, minimal has a false; for q false, a true.
        models = {frozenset(m) for m in solver.iter_minimal_models()}
        assert frozenset({"q"}) in models
        assert frozenset({"a"}) in models

    @given(databases())
    def test_matches_brute_force(self, db):
        atoms = sorted(db.vocabulary)
        p = set(atoms[::2])
        z = set(atoms[1::2][:1])
        fast = {
            frozenset(m)
            for m in PZMinimalModelSolver(db, p, z).iter_minimal_models()
        }
        slow = {frozenset(m) for m in pz_minimal_models_brute(db, p, z)}
        assert fast == slow

    @given(databases())
    def test_pz_entails_matches_brute(self, db):
        atoms = sorted(db.vocabulary)
        p = set(atoms[:3])
        z = set(atoms[3:4])
        formula = parse_formula("~a | c")
        fast = PZMinimalModelSolver(db, p, z).entails(formula)
        slow = all(
            m.satisfies(formula)
            for m in pz_minimal_models_brute(db, p, z)
        )
        assert fast == slow

    def test_is_minimal_depends_only_on_pq_projection(self):
        db = parse_database("a | z. q | a.")
        solver = PZMinimalModelSolver(db, p={"a"}, z={"z"})
        # {q} and {q, z} share the P∪Q projection {q}.
        assert solver.is_minimal({"q"}) == solver.is_minimal({"q", "z"})


class TestPrioritizedMinimal:
    def test_lexicographic_preference(self):
        # Minimize a before b: from models of a | b, prefer dropping a.
        db = parse_database("a | b.")
        solver = PrioritizedMinimalModelSolver(db, levels=[{"a"}, {"b"}])
        models = {frozenset(m) for m in [solver.shrink({"a"})]}
        assert models == {frozenset({"b"})}
        assert solver.is_minimal({"b"})
        assert not solver.is_minimal({"a"})

    def test_reversed_levels_flip_preference(self):
        db = parse_database("a | b.")
        solver = PrioritizedMinimalModelSolver(db, levels=[{"b"}, {"a"}])
        assert solver.is_minimal({"a"})
        assert not solver.is_minimal({"b"})

    def test_levels_must_not_overlap(self):
        db = parse_database("a | b.")
        with pytest.raises(Exception):
            PrioritizedMinimalModelSolver(db, levels=[{"a"}, {"a"}])

    @given(databases())
    def test_matches_brute_force(self, db):
        atoms = sorted(db.vocabulary)
        levels = [set(atoms[:2]), set(atoms[2:4])]
        z = set(atoms[4:5])
        solver = PrioritizedMinimalModelSolver(db, levels, z)
        brute = prioritized_minimal_models_brute(db, levels, z)
        for model in brute:
            assert solver.is_minimal(model)
        formula = parse_formula("~a | b")
        fast = solver.entails(formula)
        slow = all(m.satisfies(formula) for m in brute)
        assert fast == slow


class TestDpllEngineParity:
    """The reference DPLL engine plugs in below the minimal-model
    machinery and must agree with CDCL end to end."""

    def test_minimal_models_same_under_both_engines(self, simple_db):
        cdcl = {frozenset(m) for m in minimal_models(simple_db)}
        dpll = {
            frozenset(m)
            for m in MinimalModelSolver(
                simple_db, engine="dpll"
            ).iter_minimal_models()
        }
        assert cdcl == dpll

    def test_entailment_same_under_both_engines(self, simple_db):
        formula = parse_formula("~a | ~b")
        assert MinimalModelSolver(simple_db, engine="dpll").entails(
            formula
        ) == MinimalModelSolver(simple_db, engine="cdcl").entails(formula)

    @given(databases(max_clauses=3))
    def test_random_parity(self, db):
        cdcl = {frozenset(m) for m in minimal_models(db, engine="cdcl")}
        dpll = {frozenset(m) for m in minimal_models(db, engine="dpll")}
        assert cdcl == dpll
