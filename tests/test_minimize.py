"""Unit tests for the delta-debugging witness minimizer.

Scripted (engine-free) failure predicates pin the three guarantees the
diagnosis pipeline leans on: the returned witness is **1-minimal**, the
walk is **deterministic** under a fixed seed, and the search respects
its **predicate-call budget**.
"""

from __future__ import annotations

import pytest

from repro.adversary.minimize import (
    MinimizationResult,
    erase_atom,
    minimize_database,
)
from repro.logic.clause import Clause
from repro.logic.parser import parse_database


def contains_atom(atom):
    """Predicate: the database still mentions ``atom`` anywhere."""

    def predicate(db):
        return any(atom in clause.atoms for clause in db.clauses)

    return predicate


def test_minimizes_to_single_clause():
    db = parse_database("a | b. c :- a. d :- b, not c. e. f :- e.")
    result = minimize_database(db, contains_atom("d"))
    assert result.complete
    assert len(result.db.clauses) == 1
    (clause,) = result.db.clauses
    assert "d" in clause.atoms


def test_result_is_1_minimal():
    """No single clause removal or atom erasure preserves the failure."""
    db = parse_database("a | b. c :- a, b. d :- c. e :- d, not a.")
    predicate = contains_atom("c")
    result = minimize_database(db, predicate)
    assert result.complete
    witness = result.db
    for clause in witness.clauses:
        smaller = type(witness)(witness.clauses - {clause},
                                witness.vocabulary)
        assert not predicate(smaller), clause
    for atom in witness.vocabulary:
        assert not predicate(erase_atom(witness, atom)), atom


def test_deterministic_under_fixed_seed():
    db = parse_database(
        "a | b. c :- a. d :- b. e :- c, d. f | g :- e. h :- f, not g."
    )
    predicate = contains_atom("e")
    first = minimize_database(db, predicate, seed=42)
    second = minimize_database(db, predicate, seed=42)
    assert first.db == second.db
    assert first.checks == second.checks
    assert first.removed_clauses == second.removed_clauses
    assert first.removed_atoms == second.removed_atoms


def test_respects_check_budget():
    db = parse_database(
        "a | b. c :- a. d :- b. e :- c, d. f | g :- e. h :- f, not g."
    )
    calls = []

    def counting(db_):
        calls.append(1)
        return True  # everything "fails": maximal shrinking pressure

    result = minimize_database(db, counting, max_checks=7)
    assert result.checks == 7
    assert len(calls) == 7
    assert not result.complete  # budget ran out before the fixpoint


def test_rejects_non_failing_input():
    db = parse_database("a. b :- a.")
    with pytest.raises(ValueError):
        minimize_database(db, lambda _db: False)


def test_raising_predicate_counts_as_failure_gone():
    """A predicate that raises on a candidate treats it as healthy, so
    minimization never crashes on shrinks that leave the predicate's
    syntactic regime."""
    db = parse_database("a. b :- a. c :- b.")

    def touchy(candidate):
        if len(candidate.clauses) < 2:
            raise RuntimeError("regime violated")
        return True

    result = minimize_database(db, touchy)
    assert len(result.db.clauses) == 2  # shrunk to the raise boundary


def test_erase_atom_strips_everywhere_and_drops_empty():
    db = parse_database("a | b :- c, not d. a. :- a, b.")
    erased = erase_atom(db, "a")
    assert "a" not in erased.vocabulary
    assert all("a" not in clause.atoms for clause in erased.clauses)
    # The fact `a.` became empty and must be gone entirely.
    assert len(erased.clauses) == 2


def test_erased_head_becomes_integrity_clause():
    db = parse_database("a :- b, c.")
    erased = erase_atom(db, "a")
    (clause,) = erased.clauses
    assert not clause.head  # now `:- b, c.` — still a legal witness
    assert clause.body_pos == frozenset({"b", "c"})


def test_render_mentions_budget_state():
    done = MinimizationResult(db=parse_database("a."), complete=True)
    capped = MinimizationResult(db=parse_database("a."), complete=False)
    assert "1-minimal" in done.render()
    assert "budget-capped" in capped.render()


def test_atom_erasure_can_beat_clause_removal():
    """A failure living in an atom (not a clause) still minimizes: clause
    removal alone cannot touch `v`'s co-occurrence, erasure can."""
    db = parse_database("v :- w. w :- x. x :- v.")

    def predicate(candidate):  # fails while the cycle has >= 2 atoms
        return sum(
            1 for c in candidate.clauses if len(c.atoms) >= 2
        ) >= 1

    result = minimize_database(db, predicate)
    assert result.complete
    assert len(result.db.clauses) == 1
    assert result.removed_atoms >= 1
