"""Tests for repro.models.enumeration (the brute-force ground truth)."""

from repro.logic.interpretation import Interpretation
from repro.logic.parser import parse_database, parse_formula
from repro.models.enumeration import (
    all_models,
    lex_preferred,
    minimal_models_brute,
    models_entail_brute,
    pz_minimal_models_brute,
    pz_preferred,
    prioritized_minimal_models_brute,
)


class TestAllModels:
    def test_counts(self, simple_db):
        assert len(all_models(simple_db)) == 4

    def test_inconsistent(self):
        assert all_models(parse_database("a. :- a.")) == []

    def test_empty_db_has_all_interpretations(self):
        db = parse_database("").with_vocabulary(["a", "b"])
        assert len(all_models(db)) == 4


class TestMinimalModels:
    def test_minimal_models(self, simple_db):
        assert {frozenset(m) for m in minimal_models_brute(simple_db)} == {
            frozenset({"b"}), frozenset({"a", "c"})
        }

    def test_minimal_models_are_incomparable(self, simple_db):
        minimal = minimal_models_brute(simple_db)
        for m in minimal:
            for n in minimal:
                assert not (m < n)


class TestPzOrdering:
    def test_pz_preferred_requires_same_q(self):
        p, q = frozenset({"a"}), frozenset({"q"})
        assert not pz_preferred(
            Interpretation({"q"}), Interpretation({"a"}), p, q
        )
        assert pz_preferred(
            Interpretation({"q"}), Interpretation({"a", "q"}), p, q
        )

    def test_pz_minimal_with_floating(self):
        db = parse_database("a | z.")
        models = pz_minimal_models_brute(db, {"a"}, {"z"})
        assert {frozenset(m) for m in models} == {frozenset({"z"})}

    def test_pz_reduces_to_mm_when_p_is_everything(self, simple_db):
        assert set(
            pz_minimal_models_brute(
                simple_db, simple_db.vocabulary, set()
            )
        ) == set(minimal_models_brute(simple_db))


class TestLexOrdering:
    def test_lex_preferred_level_order(self):
        levels = [frozenset({"a"}), frozenset({"b"})]
        assert lex_preferred(
            Interpretation({"b"}), Interpretation({"a"}), levels, frozenset()
        )
        assert not lex_preferred(
            Interpretation({"a"}), Interpretation({"b"}), levels, frozenset()
        )

    def test_prioritized_minimal(self):
        db = parse_database("a | b.")
        models = prioritized_minimal_models_brute(db, [{"a"}, {"b"}])
        assert {frozenset(m) for m in models} == {frozenset({"b"})}

    def test_single_level_is_pz(self, simple_db):
        assert set(
            prioritized_minimal_models_brute(
                simple_db, [simple_db.vocabulary]
            )
        ) == set(minimal_models_brute(simple_db))


def test_models_entail_brute_empty_set_entails_everything():
    assert models_entail_brute([], parse_formula("false"))
    assert not models_entail_brute(
        [Interpretation()], parse_formula("a")
    )
