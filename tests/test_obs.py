"""The observability layer: tracing, metrics, accounting, pool tokens.

Covers the tentpole's cross-cutting guarantees:

* span nesting — session → semantics → engine wrappers, and the
  parent-side span of parallel enumeration;
* the metrics registry — registration semantics, label families, the
  Prometheus-style text exposition, pull collectors;
* the no-op hot path — **proved allocation-free with construction
  counters**, not timings: with tracing disabled, an instrumented query
  constructs zero ``Span``/``NoopSpan`` objects;
* oracle accounting — observation windows, dispatch depth, the
  decorator contract;
* the checkout-token fix — a resilient retry re-acquiring the solver it
  just released counts as a repeat checkout, not a fresh pool reuse.
"""

from __future__ import annotations

import json

import pytest

from repro.logic.parser import parse_database, parse_formula
from repro.obs.accounting import (
    current_dispatch_depth,
    note_nodes,
    note_np_call,
    observe,
    sigma2_dispatch,
    totals,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    NoopSpan,
    NoopTracer,
    Span,
    Tracer,
    active_tracer,
    use_tracer,
)
from repro.semantics import get_semantics
from repro.session import DatabaseSession

DB_TEXT = "a | b. c :- a. d."


# ----------------------------------------------------------------------
# Span nesting
# ----------------------------------------------------------------------
def test_session_spans_nest_query_over_semantics():
    db = parse_database(DB_TEXT)
    tracer = Tracer()
    with use_tracer(tracer):
        DatabaseSession(db).ask("~a | ~b")
    roots = tracer.finished_roots()
    assert [r.name for r in roots] == ["query.ask"]
    (root,) = roots
    assert root.attributes["semantics"] == "egcwa"
    assert [c.name for c in root.children] == ["semantics.infers"]
    child = root.children[0]
    assert child.attributes["sat_calls"] >= 1
    assert child.attributes["max_sigma2_depth"] <= 1


def test_engine_wrapper_spans_nest_inside_entry_point():
    """A cached-engine query shows wrapper → inner engine nesting."""
    db = parse_database(DB_TEXT)
    tracer = Tracer()
    with use_tracer(tracer):
        get_semantics("egcwa", engine="cached").has_model(db)
    (root,) = tracer.finished_roots()
    assert root.name == "semantics.has_model"
    assert root.attributes["engine"] == "cached"
    inner = [c for c in root.children if c.name == "semantics.has_model"]
    assert inner and inner[0].attributes["engine"] == "oracle"


def test_parallel_enumeration_emits_parent_side_span():
    from repro.engine.parallel import parallel_all_models
    from repro.models.enumeration import all_models
    from repro.workloads import random_positive_db

    db = random_positive_db(10, 6, seed=3)
    tracer = Tracer()
    with use_tracer(tracer):
        merged = parallel_all_models(db, max_workers=2)
    assert {frozenset(m) for m in merged} == {
        frozenset(m) for m in all_models(db)
    }
    spans = [
        r for r in tracer.finished_roots() if r.name == "parallel.all_models"
    ]
    assert len(spans) == 1
    assert spans[0].attributes["workers"] == 2
    assert spans[0].attributes["models"] == len(merged)


def test_span_records_error_event_and_reraises():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with use_tracer(tracer):
            with tracer.span("failing"):
                raise ValueError("boom")
    (root,) = tracer.finished_roots()
    assert [e["name"] for e in root.events] == ["error"]
    assert root.events[0]["type"] == "ValueError"


def test_export_jsonl_round_trips():
    tracer = Tracer()
    with tracer.span("outer", k=1):
        with tracer.span("inner"):
            pass
    payload = tracer.export_jsonl()
    assert payload.endswith("\n")
    (line,) = payload.splitlines()
    decoded = json.loads(line)
    assert decoded["name"] == "outer"
    assert decoded["attributes"] == {"k": 1}
    assert [c["name"] for c in decoded["children"]] == ["inner"]


def test_use_tracer_restores_previous():
    baseline = active_tracer()
    tracer = Tracer()
    with use_tracer(tracer):
        assert active_tracer() is tracer
    assert active_tracer() is baseline


# ----------------------------------------------------------------------
# The no-op hot path allocates no spans (counter-proved, not timed)
# ----------------------------------------------------------------------
def test_disabled_tracer_constructs_zero_spans():
    db = parse_database(DB_TEXT)
    session = DatabaseSession(db)
    session.ask("d")  # warm caches outside the measured window
    assert active_tracer().is_noop
    spans_before = Span.created
    noops_before = NoopSpan.instances
    for _ in range(5):
        session.ask("d")
        session.ask_literal("~c")
        session.has_model()
    assert Span.created == spans_before
    assert NoopSpan.instances == noops_before


def test_noop_tracer_span_is_a_singleton():
    tracer = NoopTracer()
    first = tracer.span("anything", k=1)
    second = tracer.span("else")
    assert first is second
    with first as span:
        span.set_attribute("k", 2)
        span.add_event("ignored")
    assert tracer.export_jsonl() == ""
    assert tracer.render_tree() == ""


# ----------------------------------------------------------------------
# Metrics registry and exposition
# ----------------------------------------------------------------------
def test_counter_gauge_histogram_exposition_format():
    registry = MetricsRegistry()
    calls = registry.counter("test_calls_total", "Calls")
    calls.inc()
    calls.inc(2)
    depth = registry.gauge("test_depth", "Depth")
    depth.set(3)
    depth.dec()
    hist = registry.histogram(
        "test_latency_ms", "Latency", buckets=(1.0, 10.0)
    )
    hist.observe(0.5)
    hist.observe(5.0)
    hist.observe(50.0)
    text = registry.expose()
    lines = text.splitlines()
    assert "# HELP test_calls_total Calls" in lines
    assert "# TYPE test_calls_total counter" in lines
    assert "test_calls_total 3" in lines
    assert "test_depth 2" in lines
    assert 'test_latency_ms_bucket{le="1"} 1' in lines
    assert 'test_latency_ms_bucket{le="10"} 2' in lines
    assert 'test_latency_ms_bucket{le="+Inf"} 3' in lines
    assert "test_latency_ms_count 3" in lines


def test_labeled_family_exposition():
    registry = MetricsRegistry()
    family = registry.counter(
        "test_by_kind_total", "By kind", labelnames=("kind",)
    )
    family.labels(kind="x").inc()
    family.labels(kind="x").inc()
    family.labels(kind="y").inc()
    assert family.labels(kind="x") is family.labels(kind="x")
    lines = registry.expose().splitlines()
    assert 'test_by_kind_total{kind="x"} 2' in lines
    assert 'test_by_kind_total{kind="y"} 1' in lines


def test_reregistration_is_idempotent_but_kind_mismatch_raises():
    registry = MetricsRegistry()
    first = registry.counter("test_thing_total", "Thing")
    assert registry.counter("test_thing_total", "Thing") is first
    with pytest.raises(ValueError):
        registry.gauge("test_thing_total", "Thing")


def test_pull_collectors_feed_exposition():
    registry = MetricsRegistry()
    registry.register_collector("pool", lambda: {"test_pool_size": 7.0})
    assert "test_pool_size 7" in registry.expose().splitlines()
    assert registry.snapshot()["test_pool_size"] == 7.0
    registry.register_collector("broken", lambda: 1 / 0)
    registry.expose()  # collector failures are swallowed


def test_process_metrics_cover_the_instrumented_subsystems():
    from repro.obs.metrics import METRICS

    db = parse_database(DB_TEXT)
    get_semantics("egcwa", engine="cached").model_set(db)
    snapshot = METRICS.snapshot()
    for name in (
        "repro_semantics_calls_total",
        "repro_oracle_np_calls_total",
        "repro_cache_hits",
        "repro_pool_solvers_created",
        "repro_runtime_retries_total",
    ):
        assert any(key.startswith(name) for key in snapshot), name


# ----------------------------------------------------------------------
# Oracle accounting
# ----------------------------------------------------------------------
def test_observation_windows_nest_and_delta():
    with observe() as outer:
        note_np_call()
        with observe() as inner:
            note_np_call()
            note_nodes(3)
            with sigma2_dispatch():
                assert current_dispatch_depth() == 1
        assert current_dispatch_depth() == 0
    assert inner.np_calls == 1
    assert inner.nodes == 3
    assert inner.sigma2_dispatches == 1
    assert inner.max_sigma2_depth == 1
    assert outer.np_calls == 2
    assert outer.sigma2_dispatches == 1


def test_observe_fills_window_on_exception():
    with pytest.raises(RuntimeError):
        with observe() as window:
            note_np_call()
            raise RuntimeError
    assert window.np_calls == 1


def test_totals_are_monotone():
    before = totals().np_calls
    note_np_call()
    assert totals().np_calls == before + 1


def test_minimal_model_primitive_counts_as_dispatch():
    from repro.sat.minimal import MinimalModelSolver

    db = parse_database("a | b.")
    with observe() as window:
        MinimalModelSolver(db).find_minimal_satisfying(parse_formula("a"))
    assert window.sigma2_dispatches >= 1
    assert window.max_sigma2_depth == 1


def test_budget_sat_tick_counts_np_call_before_raising():
    from repro.errors import BudgetExceededError
    from repro.runtime import Budget, observe_sat_call
    from repro.runtime.budget import budget_scope

    with observe() as window:
        with pytest.raises(BudgetExceededError):
            with budget_scope(Budget(max_sat_calls=1)):
                observe_sat_call()
                observe_sat_call()  # trips the budget
    assert window.np_calls == 2


# ----------------------------------------------------------------------
# The checkout-token pool-reuse fix (session.stats double count)
# ----------------------------------------------------------------------
def test_repeat_checkout_in_token_window_is_not_a_reuse():
    from repro.sat.incremental import (
        IncrementalSatSolver,
        SolverPool,
        checkout_token,
    )

    db = parse_database(DB_TEXT)
    pool = SolverPool(maxsize=4)
    build = lambda: IncrementalSatSolver(db)
    with checkout_token():
        solver = pool.acquire("k", build)
        pool.release("k", solver)
        again = pool.acquire("k", build)  # the retry re-checkout
        pool.release("k", again)
    assert again is solver
    assert pool.reused == 0
    assert pool.repeat_checkouts == 1
    # A second window is a fresh query: the same solver now counts.
    with checkout_token():
        third = pool.acquire("k", build)
        pool.release("k", third)
    assert third is solver
    assert pool.reused == 1
    assert pool.stats()["solver_repeat_checkouts"] == 1


def test_checkouts_without_window_count_as_reuse():
    from repro.sat.incremental import IncrementalSatSolver, SolverPool

    db = parse_database(DB_TEXT)
    pool = SolverPool(maxsize=4)
    build = lambda: IncrementalSatSolver(db)
    solver = pool.acquire("k", build)
    pool.release("k", solver)
    assert pool.acquire("k", build) is solver
    assert pool.reused == 1
    assert pool.repeat_checkouts == 0


def test_resilient_retry_does_not_double_count_pool_reuse():
    """The regression: a resilient retry checking out the solver the
    failed attempt released must not inflate ``solver_reuses`` in
    ``session.stats()``."""
    from repro.engine.resilient import ResilientSemantics, RetryPolicy
    from repro.runtime.faults import FaultPlan, fault_plan
    from repro.sat.incremental import SOLVER_POOL

    db = parse_database("a | b. c :- a. e | f. g :- e.")
    query = parse_formula("~a | ~b")
    inner = get_semantics("egcwa", engine="oracle")
    resilient = ResilientSemantics(
        inner,
        retry=RetryPolicy(max_retries=3, backoff_ms=0.0),
    )
    inner.infers(db, query)  # park a warm solver for this context
    before = SOLVER_POOL.stats()
    plan = FaultPlan(seed=1, sat_fault_rate=1.0, max_sat_faults=1)
    with fault_plan(plan):
        outcome = resilient.run("infers", db, query)
    assert outcome.ok and outcome.attempts == 2
    delta_reuse = SOLVER_POOL.stats()["solver_reuses"] - before["solver_reuses"]
    repeat = (
        SOLVER_POOL.stats()["solver_repeat_checkouts"]
        - before["solver_repeat_checkouts"]
    )
    # One query = at most one warm-solver reuse per solver context, no
    # matter how many retry attempts checked the solver out again.
    assert delta_reuse <= 1
    assert repeat >= 1


# ----------------------------------------------------------------------
# Instrument edge cases: validation, resets, reprs
# ----------------------------------------------------------------------
def test_metric_names_are_validated():
    registry = MetricsRegistry()
    for bad in ("", "9leading_digit", "has-dash", "white space"):
        with pytest.raises(ValueError):
            registry.counter(bad, "bad name")


def test_gauge_set_reset_and_repr():
    registry = MetricsRegistry()
    gauge = registry.gauge("g_depth", "a depth")
    gauge.set(7)
    assert gauge.value == 7
    gauge.reset()
    assert gauge.value == 0
    assert "g_depth" in repr(gauge)


def test_histogram_requires_buckets_and_tracks_count_sum():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("h_empty", "no buckets", buckets=())
    hist = registry.histogram("h_ms", "latency", buckets=(1.0, 10.0))
    hist.observe(0.5)
    hist.observe(20.0)
    assert hist.count == 2
    assert hist.sum == pytest.approx(20.5)
    assert "h_ms" in repr(hist)
    hist.reset()
    assert hist.count == 0
    assert hist.sum == 0.0


def test_family_label_mismatch_raises():
    registry = MetricsRegistry()
    family = registry.counter("calls", "by method", labelnames=("method",))
    with pytest.raises(ValueError):
        family.labels(wrong="x")
    with pytest.raises(ValueError):
        registry.counter("calls", "by method")  # unlabeled vs family
    with pytest.raises(ValueError):
        registry.counter("calls", "by method", labelnames=("other",))
    registry.counter("plain", "no labels")
    with pytest.raises(ValueError):
        registry.counter("plain", "no labels", labelnames=("method",))


def test_registry_get_and_reset_cover_families():
    registry = MetricsRegistry()
    family = registry.counter("calls", "by method", labelnames=("method",))
    family.labels(method="ask").inc(3)
    assert registry.get("calls") is family
    assert registry.get("missing") is None
    registry.reset()
    assert family.labels(method="ask").value == 0


# ----------------------------------------------------------------------
# Span export edge cases
# ----------------------------------------------------------------------
def test_span_attributes_events_render_and_repr():
    tracer = Tracer()
    with tracer.span("outer", engine="oracle") as span:
        span.set_attribute("semantics", "gcwa")
        span.add_event("retry", attempt=1)
        with tracer.span("inner"):
            pass
    (root,) = tracer.finished_roots()
    node = root.as_dict()
    assert node["attributes"]["semantics"] == "gcwa"
    assert node["events"][0]["name"] == "retry"
    text = root.render()
    assert text.startswith("outer")
    assert "semantics=gcwa" in text
    assert "! retry" in text and "attempt=1" in text
    assert "\n  inner" in text
    assert "children=1" in repr(root)


def test_tracer_current_clear_and_render_tree():
    tracer = Tracer()
    assert tracer.current() is None
    with tracer.span("root") as span:
        assert tracer.current() is span
    assert tracer.current() is None
    assert tracer.render_tree().startswith("root")
    tracer.clear()
    assert tracer.finished_roots() == []
    assert tracer.render_tree() == ""


def test_noop_tracer_exports_are_empty():
    noop = NoopTracer()
    assert noop.current() is noop.span("anything")
    assert noop.finished_roots() == []
    assert noop.export_jsonl() == ""
    assert noop.render_tree() == ""


def test_set_tracer_returns_previous():
    from repro.obs.trace import set_tracer

    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        assert active_tracer() is tracer
    finally:
        assert set_tracer(previous) is tracer
    assert active_tracer() is previous


# ----------------------------------------------------------------------
# Accounting edge cases
# ----------------------------------------------------------------------
def test_observation_as_dict_and_degenerate_dispatch():
    from repro.obs.accounting import note_sigma2_dispatch

    with observe() as window:
        note_np_call()
        note_sigma2_dispatch()  # the machine's k* = 0 short-circuit
    assert window.as_dict() == {
        "np_calls": 1,
        "sigma2_dispatches": 1,
        "nodes": 0,
        "max_sigma2_depth": 1,
    }
