"""The paper's worked examples and table claims, as regression tests.

Every test here is traceable to a specific statement of the paper.
"""

import pytest

from repro.complexity.classes import (
    CC,
    ROW_ORDER,
    TABLE1,
    TABLE2,
    Claim,
    Regime,
    Task,
    table,
)
from repro.logic.parser import parse_database, parse_formula
from repro.semantics import get_semantics


class TestExample31:
    """Paper Example 3.1: DB = {a | b;  :- a, b;  c :- a, b}."""

    def setup_method(self):
        self.db = parse_database("a | b. :- a, b. c :- a, b.")

    def test_ddr_does_not_infer_not_c(self):
        assert not get_semantics("ddr").infers_literal(self.db, "not c")

    def test_because_c_is_possibly_true(self):
        from repro.semantics.ddr import possibly_true_atoms

        assert "c" in possibly_true_atoms(self.db)

    def test_minimal_model_semantics_does_infer_not_c(self):
        for name in ("gcwa", "egcwa", "ecwa"):
            assert get_semantics(name).infers_literal(self.db, "not c"), name


class TestSection2Example:
    """Paper Section 2: DB with M(DB), MM(DB) and MM(DB;P;Z) spelled out:
    the example database has models {b}, {a}(*), {a,b}, {a,c}, {b,c},
    {a,b,c}, minimal models {a}, {b}, and for <{a};{b};{c}>
    MM = {b}, {b,c}, {a}, {a,c}."""

    def setup_method(self):
        # A database with exactly those models: a | b.
        self.db = parse_database("a | b.").with_vocabulary(["c"])

    def test_models(self):
        from repro.models.enumeration import all_models

        models = {frozenset(m) for m in all_models(self.db)}
        assert models == {
            frozenset({"a"}), frozenset({"b"}), frozenset({"a", "b"}),
            frozenset({"a", "c"}), frozenset({"b", "c"}),
            frozenset({"a", "b", "c"}),
        }

    def test_minimal_models(self):
        from repro.models.enumeration import minimal_models_brute

        assert {frozenset(m) for m in minimal_models_brute(self.db)} == {
            frozenset({"a"}), frozenset({"b"})
        }

    def test_pz_minimal_models(self):
        from repro.models.enumeration import pz_minimal_models_brute

        models = {
            frozenset(m)
            for m in pz_minimal_models_brute(self.db, {"a"}, {"c"})
        }
        assert models == {
            frozenset({"b"}), frozenset({"b", "c"}),
            frozenset({"a"}), frozenset({"a", "c"}),
        }


class TestTableClaimsData:
    def test_every_row_has_all_three_tasks_in_both_tables(self):
        for claims in (TABLE1, TABLE2):
            for row in ROW_ORDER:
                for task in Task:
                    assert (row, task) in claims, (row, task)

    def test_table1_tractable_cells(self):
        assert TABLE1[("ddr", Task.LITERAL)].upper is CC.P
        assert TABLE1[("pws", Task.LITERAL)].upper is CC.P

    def test_table2_literal_cells_become_conp(self):
        assert TABLE2[("ddr", Task.LITERAL)].upper is CC.CONP
        assert TABLE2[("pws", Task.LITERAL)].upper is CC.CONP

    def test_model_existence_column(self):
        for row in ROW_ORDER:
            assert TABLE1[(row, Task.EXISTS_MODEL)].upper is CC.CONSTANT
        assert TABLE2[("egcwa", Task.EXISTS_MODEL)].upper is CC.NP
        assert TABLE2[("icwa", Task.EXISTS_MODEL)].upper is CC.CONSTANT
        assert TABLE2[("dsm", Task.EXISTS_MODEL)].upper is CC.SIGMA2P
        assert TABLE2[("perf", Task.EXISTS_MODEL)].upper is CC.SIGMA2P

    def test_theta_cells(self):
        for row in ("gcwa", "ccwa"):
            claim = TABLE1[(row, Task.FORMULA)]
            assert claim.upper is CC.THETA3P
            assert claim.hard_for is CC.PI2P

    def test_render_strings(self):
        assert Claim(CC.PI2P).render() == "Pi2p-complete"
        assert "hard" in Claim(
            CC.THETA3P, complete=False, hard_for=CC.PI2P
        ).render()
        assert Claim(CC.CONSTANT).render() == "O(1)"

    def test_table_lookup_by_regime(self):
        assert table(Regime.POSITIVE) is TABLE1
        assert table(Regime.WITH_ICS) is TABLE2


class TestStructuralClaims:
    def test_stratifiability_asserts_consistency(self):
        """Paper Section 4: a stratified database is consistent (ICWA
        model existence is O(1))."""
        from repro.semantics.stratification import is_stratified
        from repro.sat.solver import database_is_consistent
        from repro.workloads import random_stratified_db

        for seed in range(5):
            db = random_stratified_db(5, 7, seed=seed)
            assert is_stratified(db)
            assert database_is_consistent(db)

    def test_positive_db_always_consistent(self):
        """Table 1 model existence is O(1): positive DDBs always have
        models (set everything true)."""
        from repro.workloads import random_positive_db

        for seed in range(5):
            db = random_positive_db(5, 7, seed=seed)
            assert db.is_model(db.vocabulary)

    def test_gcwa_vs_cwa_motivation(self):
        """Section 3.1's motivation: Reiter's CWA is inconsistent on
        disjunctive databases while GCWA is not."""
        db = parse_database("a | b.")
        # CWA would add both ¬a and ¬b — inconsistent with a | b:
        from repro.logic.clause import Clause

        cwa_closure = db.with_clauses(
            [Clause.integrity(["a"]), Clause.integrity(["b"])]
        )
        from repro.sat.solver import database_is_consistent

        assert not database_is_consistent(cwa_closure)
        assert get_semantics("gcwa").has_model(db)
