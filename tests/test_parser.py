"""Tests for repro.logic.parser."""

import pytest

from repro.errors import ParseError
from repro.logic.clause import Clause
from repro.logic.formula import And, Iff, Implies, Not, Or, Var
from repro.logic.parser import parse_clause, parse_database, parse_formula


class TestClauseParsing:
    def test_fact(self):
        assert parse_clause("a.") == Clause.fact("a")

    def test_disjunctive_fact(self):
        assert parse_clause("a | b.") == Clause.fact("a", "b")

    def test_semicolon_head_separator(self):
        assert parse_clause("a ; b.") == Clause.fact("a", "b")

    def test_rule_with_negation(self):
        assert parse_clause("a :- b, not c.") == Clause.rule(
            ["a"], ["b"], ["c"]
        )

    def test_tilde_negation(self):
        assert parse_clause("a :- ~c.") == Clause.rule(["a"], [], ["c"])

    def test_left_arrow_alternative(self):
        assert parse_clause("a <- b.") == Clause.rule(["a"], ["b"])

    def test_integrity_clause(self):
        assert parse_clause(":- a, b.") == Clause.integrity(["a", "b"])

    def test_grounded_atoms_with_arguments(self):
        clause = parse_clause("wins(x) :- plays(x, y).")
        assert clause.head == {"wins(x)"}
        assert clause.body_pos == {"plays(x, y)"}

    def test_trailing_dot_optional(self):
        assert parse_clause("a :- b") == Clause.rule(["a"], ["b"])

    def test_comments_stripped(self):
        assert parse_clause("a. % comment") == Clause.fact("a")

    @pytest.mark.parametrize(
        "bad", ["", ".", "| :- a.", "a :- ,.", "a :- 1x.", "a|2b."]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_clause(bad)


class TestDatabaseParsing:
    def test_multiline_database(self):
        db = parse_database(
            """
            % choices
            a | b.
            c :- a.   # alt comment
            :- b, c.
            """
        )
        assert len(db) == 3
        assert db.has_integrity_clauses

    def test_empty_database(self):
        assert len(parse_database("  % nothing\n")) == 0

    def test_roundtrip(self):
        text = "a | b.\nc :- a, not d."
        db = parse_database(text)
        assert parse_database(str(db)) == db


class TestFormulaParsing:
    def test_atom(self):
        assert parse_formula("a") == Var("a")

    def test_precedence_and_over_or(self):
        assert parse_formula("a & b | c") == Or(And(Var("a"), Var("b")),
                                                Var("c"))

    def test_implication_is_right_associative(self):
        formula = parse_formula("a -> b -> c")
        assert formula == Implies(Var("a"), Implies(Var("b"), Var("c")))

    def test_iff_lowest_precedence(self):
        formula = parse_formula("a -> b <-> c")
        assert isinstance(formula, Iff)

    def test_negation_forms(self):
        assert parse_formula("~a") == Not(Var("a"))
        assert parse_formula("not a") == Not(Var("a"))

    def test_parentheses(self):
        formula = parse_formula("(a | b) & c")
        assert isinstance(formula, And)

    def test_constants(self):
        assert parse_formula("true").evaluate(set())
        assert not parse_formula("false").evaluate(set())

    def test_not_prefix_of_identifier(self):
        # "nothing" must parse as an atom, not "not hing".
        assert parse_formula("nothing") == Var("nothing")

    def test_str_roundtrip(self):
        for text in ["a & (b | ~c)", "a -> b", "a <-> ~b", "(a & b) | c"]:
            formula = parse_formula(text)
            assert parse_formula(str(formula)) == formula

    @pytest.mark.parametrize("bad", ["", "a &", "(a", "a b", "& a", "a ~"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_formula(bad)
