"""Tests for the Partial Disjunctive Stable Model semantics."""

import pytest
from hypothesis import given

from repro.logic.formula import TRUE3, UNDEF3
from repro.logic.interpretation import ThreeValuedInterpretation
from repro.logic.parser import parse_database, parse_formula
from repro.semantics import get_semantics
from repro.semantics.pdsm import (
    encode_degree,
    is_partial_stable,
    is_partial_stable_brute,
    satisfies_reduct,
)

from conftest import databases, positive_databases


def tvi(true, possible):
    return ThreeValuedInterpretation(true, possible)


class TestPartialStableCheck:
    def test_even_loop_well_founded_model(self, unstratified_db):
        """a :- not b / b :- not a has the all-undefined partial stable
        model plus the two total ones."""
        assert is_partial_stable(unstratified_db, tvi(set(), {"a", "b"}))
        assert is_partial_stable(unstratified_db, tvi({"a"}, {"a"}))
        assert is_partial_stable(unstratified_db, tvi({"b"}, {"b"}))
        assert not is_partial_stable(
            unstratified_db, tvi({"a", "b"}, {"a", "b"})
        )

    def test_odd_loop_has_only_undefined(self):
        db = parse_database("a :- not a.")
        assert is_partial_stable(db, tvi(set(), {"a"}))
        assert not is_partial_stable(db, tvi({"a"}, {"a"}))
        assert not is_partial_stable(db, tvi(set(), set()))

    def test_positive_partial_stable_are_total(self, simple_db):
        """On positive databases a strictly partial candidate is beaten
        by its own true-set; partial stable models are the minimal ones."""
        assert is_partial_stable(simple_db, tvi({"b"}, {"b"}))
        assert not is_partial_stable(simple_db, tvi(set(), {"a", "b", "c"}))

    @given(databases(max_clauses=3))
    def test_fast_check_matches_brute(self, db):
        from repro.logic.interpretation import all_three_valued

        small_vocab = sorted(db.vocabulary)[:4]
        if set(small_vocab) != set(db.vocabulary):
            return  # keep the 3^n enumeration small
        for interpretation in all_three_valued(db.vocabulary):
            assert is_partial_stable(db, interpretation) == \
                is_partial_stable_brute(db, interpretation)


class TestSemantics:
    def test_model_set_contains_well_founded_style_model(
        self, unstratified_db
    ):
        models = get_semantics("pdsm").model_set(unstratified_db)
        assert tvi(set(), {"a", "b"}) in models
        assert len(models) == 3

    def test_total_pdsm_equals_dsm(self, unstratified_db):
        pdsm_total = {
            m.to_total()
            for m in get_semantics("pdsm").model_set(unstratified_db)
            if m.is_total
        }
        dsm = set(get_semantics("dsm").model_set(unstratified_db))
        assert pdsm_total == dsm

    @given(databases(max_clauses=3))
    def test_total_pdsm_equals_dsm_random(self, db):
        pdsm_total = {
            m.to_total()
            for m in get_semantics("pdsm").model_set(db)
            if m.is_total
        }
        dsm = set(get_semantics("dsm").model_set(db))
        assert pdsm_total == dsm

    def test_inference_requires_degree_one(self, unstratified_db):
        pdsm = get_semantics("pdsm")
        # a | b has degree 1/2 in the all-undefined model.
        assert not pdsm.infers(unstratified_db, parse_formula("a | b"))
        # Under DSM (total models only) it IS inferred.
        assert get_semantics("dsm").infers(
            unstratified_db, parse_formula("a | b")
        )

    def test_pdsm_always_exists_for_normal_programs(self):
        # Normal (non-disjunctive) programs always have the well-founded
        # partial stable model.
        db = parse_database("a :- not a. b :- not c.")
        assert get_semantics("pdsm").has_model(db)

    def test_pdsm_may_not_exist_for_disjunctive(self):
        # A disjunctive program with no partial stable model:
        # w | w'. combined with constraints killing every candidate.
        db = parse_database("a | b. :- a. :- b.")
        assert not get_semantics("pdsm").has_model(db)

    @given(databases(max_clauses=3))
    def test_oracle_matches_brute(self, db):
        formula = parse_formula("a | ~b")
        assert get_semantics("pdsm").infers(db, formula) == get_semantics(
            "pdsm", engine="brute"
        ).infers(db, formula)

    @given(databases(max_clauses=3))
    def test_model_sets_match(self, db):
        assert get_semantics("pdsm").model_set(db) == get_semantics(
            "pdsm", engine="brute"
        ).model_set(db)


class TestEncoding:
    def test_encode_degree_one(self):
        formula = parse_formula("a & ~b")
        encoded = encode_degree(formula, at_least_half=False)
        # degree 1 iff t_a and b fully false (~p_b).
        assert encoded.evaluate({"t__a", "p__a"})
        assert not encoded.evaluate({"t__a", "p__a", "p__b"})

    def test_encode_degree_half(self):
        formula = parse_formula("a")
        encoded = encode_degree(formula, at_least_half=True)
        assert encoded.evaluate({"p__a"})
        assert not encoded.evaluate(set())

    def test_reduct_satisfaction_helper(self, unstratified_db):
        assert satisfies_reduct(unstratified_db, tvi(set(), {"a", "b"}))
        assert not satisfies_reduct(unstratified_db, tvi(set(), set()))
