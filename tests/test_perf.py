"""Tests for the Perfect Models Semantics."""

import pytest
from hypothesis import given

from repro.errors import NotPositiveError
from repro.logic.parser import parse_database, parse_formula
from repro.semantics import get_semantics
from repro.semantics.perf import (
    PriorityRelation,
    is_perfect,
    preferable,
    preferable_witness,
)
from repro.workloads import win_move_cycle, win_move_path

from conftest import databases, positive_databases


class TestPriorityRelation:
    def test_negative_body_has_higher_priority(self):
        db = parse_database("a :- not b.")
        priorities = PriorityRelation(db)
        assert priorities.lt("a", "b")
        assert not priorities.lt("b", "a")

    def test_positive_body_is_geq(self):
        db = parse_database("a :- b.")
        priorities = PriorityRelation(db)
        assert priorities.leq("a", "b")
        assert not priorities.lt("a", "b")

    def test_heads_share_priority(self):
        db = parse_database("a | b.")
        priorities = PriorityRelation(db)
        assert priorities.leq("a", "b") and priorities.leq("b", "a")

    def test_transitivity_with_strictness(self):
        db = parse_database("a :- b. b :- not c.")
        priorities = PriorityRelation(db)
        assert priorities.lt("a", "c")  # a <= b < c

    def test_priority_cycle_detection(self, unstratified_db):
        assert PriorityRelation(unstratified_db).has_priority_cycle()

    def test_no_cycle_for_stratified(self, stratified_db):
        assert not PriorityRelation(stratified_db).has_priority_cycle()

    def test_integrity_clauses_rejected(self):
        with pytest.raises(NotPositiveError):
            PriorityRelation(parse_database("a | b. :- a, b."))

    def test_higher_than(self):
        db = parse_database("a :- not b, not c.")
        priorities = PriorityRelation(db)
        assert priorities.higher_than("a") == {"b", "c"}


class TestPreference:
    def test_stratified_example(self):
        db = parse_database("a :- not b.")
        priorities = PriorityRelation(db)
        assert preferable(
            frozenset({"a"}), frozenset({"b"}), priorities
        )
        assert not preferable(
            frozenset({"b"}), frozenset({"a"}), priorities
        )

    def test_proper_submodels_are_preferable(self, simple_db):
        priorities = PriorityRelation(simple_db)
        assert preferable(
            frozenset({"b"}), frozenset({"b", "c"}), priorities
        )

    def test_witness_matches_brute_preference(self, stratified_db):
        from repro.models.enumeration import all_models

        priorities = PriorityRelation(stratified_db)
        models = all_models(stratified_db)
        for model in models:
            witness = preferable_witness(stratified_db, model, priorities)
            brute = any(preferable(n, model, priorities) for n in models)
            assert (witness is not None) == brute


class TestPerfectModels:
    def test_positive_db_perfect_equals_minimal(self, simple_db):
        from repro.models.enumeration import minimal_models_brute

        assert get_semantics("perf").model_set(simple_db) == frozenset(
            minimal_models_brute(simple_db)
        )

    def test_stratified_negation(self):
        db = parse_database("a :- not b.")
        models = get_semantics("perf").model_set(db)
        assert {frozenset(m) for m in models} == {frozenset({"a"})}

    def test_win_path_has_unique_perfect_model(self):
        db = win_move_path(4)
        models = get_semantics("perf").model_set(db)
        assert len(models) == 1
        (model,) = models
        # Alternating: win3 true (win4 has no move), win2 false, win1 true.
        assert model == {"win1", "win3"}

    def test_unstratified_loop_has_no_perfect_model(self, unstratified_db):
        assert get_semantics("perf").model_set(unstratified_db) == frozenset()
        assert not get_semantics("perf").has_model(unstratified_db)

    def test_is_perfect_rejects_non_models(self, simple_db):
        assert not is_perfect(simple_db, frozenset({"a"}))

    @given(databases(allow_ic=False, max_clauses=4))
    def test_oracle_matches_brute_model_sets(self, db):
        assert get_semantics("perf").model_set(db) == get_semantics(
            "perf", engine="brute"
        ).model_set(db)

    @given(databases(allow_ic=False, max_clauses=4))
    def test_oracle_matches_brute_inference(self, db):
        formula = parse_formula("a | ~b")
        assert get_semantics("perf").infers(db, formula) == get_semantics(
            "perf", engine="brute"
        ).infers(db, formula)

    @given(positive_databases(max_clauses=4))
    def test_perfect_models_are_minimal(self, db):
        from repro.sat.minimal import is_minimal_model

        for model in get_semantics("perf").model_set(db):
            assert is_minimal_model(db, model)

    def test_perf_equals_icwa_on_stratified(self, stratified_db):
        """The paper: ICWA captures PERF under stratified negation."""
        perf_models = get_semantics("perf").model_set(stratified_db)
        icwa_models = get_semantics("icwa").model_set(stratified_db)
        assert perf_models == icwa_models
