"""Property-based invariants over generated databases and queries.

Three families, each quantified over hypothesis-generated inputs rather
than hand-picked cases:

* **lattice monotonicity** — the inference-strength ordering
  ``classical ⊆ DDR ⊆ {GCWA, PWS} ⊆ EGCWA`` holds for *random* query
  formulas, not just a fixed query list;
* **idempotence / cache coherence** — re-querying a semantics (directly,
  through the memoizing ``cached`` engine, and through a fresh
  :class:`~repro.session.DatabaseSession`) returns the identical model
  set and verdicts;
* **decomposition product law** — the minimal models of a database
  assembled from components over disjoint vocabularies are exactly the
  per-component minimal models combined by union.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.logic.clause import Clause
from repro.logic.database import DisjunctiveDatabase
from repro.models.enumeration import minimal_models_brute
from repro.sat.decompose import product_interpretations
from repro.sat.solver import entails_classically
from repro.semantics import get_semantics
from repro.session import DatabaseSession
from repro.workloads import random_query_formula

from conftest import ATOMS, clauses, databases, positive_databases

#: Generated query formulas over the shared atom pool (a seed-indexed
#: view of the deterministic workload generator, so failures shrink to a
#: reproducible seed).
queries = st.integers(min_value=0, max_value=10**6).map(
    lambda seed: random_query_formula(ATOMS, depth=2, seed=seed)
)


# ----------------------------------------------------------------------
# Lattice monotonicity on generated queries
# ----------------------------------------------------------------------
@given(positive_databases(max_clauses=4), queries)
def test_inference_strength_is_monotone(db, query):
    """Smaller selected model set => more cautious consequences, for
    random queries: classical ⊆ DDR ⊆ GCWA ⊆ EGCWA and DDR ⊆ PWS ⊆
    EGCWA."""
    ddr = get_semantics("ddr")
    gcwa = get_semantics("gcwa")
    pws = get_semantics("pws")
    egcwa = get_semantics("egcwa")
    if entails_classically(db, query):
        assert ddr.infers(db, query)
    if ddr.infers(db, query):
        assert gcwa.infers(db, query)
        assert pws.infers(db, query)
    if gcwa.infers(db, query):
        assert egcwa.infers(db, query)
    if pws.infers(db, query):
        assert egcwa.infers(db, query)


@given(positive_databases(max_clauses=4), queries)
def test_model_set_inclusion_implies_inference_inclusion(db, query):
    """The semantic justification of the previous test, checked
    directly: if S selects a subset of T's models, every T-consequence
    is an S-consequence."""
    pairs = [("egcwa", "gcwa"), ("gcwa", "ddr"), ("pws", "ddr")]
    for stronger, weaker in pairs:
        s = get_semantics(stronger)
        w = get_semantics(weaker)
        assert s.model_set(db) <= w.model_set(db)
        if w.infers(db, query):
            assert s.infers(db, query), (stronger, weaker)


# ----------------------------------------------------------------------
# Idempotence / cache coherence
# ----------------------------------------------------------------------
#: Semantics defined on arbitrary (negation + IC) databases.
GENERAL_SEMANTICS = ("gcwa", "ccwa", "egcwa", "ecwa", "dsm")


@given(databases(max_clauses=4))
def test_model_set_requery_is_idempotent(db):
    """Asking the same engine twice returns the identical frozenset."""
    for name in GENERAL_SEMANTICS:
        semantics = get_semantics(name)
        assert semantics.model_set(db) == semantics.model_set(db), name


@given(databases(max_clauses=4))
def test_cached_engine_is_coherent_with_oracle(db):
    """The memoizing engine's answer — first (miss) and second (hit)
    query alike — equals the uncached oracle answer."""
    for name in GENERAL_SEMANTICS:
        oracle = get_semantics(name, engine="oracle")
        cached = get_semantics(name, engine="cached")
        expected = oracle.model_set(db)
        assert cached.model_set(db) == expected, name  # may miss
        assert cached.model_set(db) == expected, name  # must hit


@given(databases(max_clauses=4), queries)
def test_session_requery_is_idempotent(db, query):
    """Two sessions over equal databases, and repeated queries within
    one session, agree verdict-for-verdict (cache coherence at the
    session layer)."""
    first = DatabaseSession(db, engine="cached")
    second = DatabaseSession(db, engine="cached")
    verdict = first.ask(query).verdict
    assert first.ask(query).verdict == verdict
    assert second.ask(query).verdict == verdict


# ----------------------------------------------------------------------
# Decomposition product law
# ----------------------------------------------------------------------
LEFT_ATOMS = ["a", "b", "c"]
RIGHT_ATOMS = ["x", "y", "z"]


@st.composite
def disjoint_union_dbs(draw):
    """A database assembled from two clause sets over disjoint atom
    pools, returned with its two component databases."""
    left = [
        draw(clauses(atoms=LEFT_ATOMS, allow_neg=False, allow_ic=False))
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    ]
    right = [
        draw(clauses(atoms=RIGHT_ATOMS, allow_neg=False, allow_ic=False))
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    ]
    union = DisjunctiveDatabase(left + right, LEFT_ATOMS + RIGHT_ATOMS)
    return (
        union,
        DisjunctiveDatabase(left, LEFT_ATOMS),
        DisjunctiveDatabase(right, RIGHT_ATOMS),
    )


@given(disjoint_union_dbs())
def test_minimal_models_obey_product_law(dbs):
    """MM(DB₁ ⊎ DB₂) = {M₁ ∪ M₂ : Mᵢ ∈ MM(DBᵢ)} for disjoint
    vocabularies — the identity the component decomposition engine
    relies on."""
    union, left, right = dbs
    expected = {
        frozenset(m)
        for m in product_interpretations(
            [minimal_models_brute(left), minimal_models_brute(right)]
        )
    }
    assert {frozenset(m) for m in minimal_models_brute(union)} == expected


@given(disjoint_union_dbs())
def test_product_law_holds_through_the_semantics(dbs):
    """The same law observed through EGCWA (= MM) on every engine that
    may or may not decompose internally."""
    union, left, right = dbs
    expected = {
        frozenset(m)
        for m in product_interpretations(
            [
                get_semantics("egcwa", engine="brute").model_set(left),
                get_semantics("egcwa", engine="brute").model_set(right),
            ]
        )
    }
    for engine in ("brute", "oracle", "cached"):
        observed = {
            frozenset(m)
            for m in get_semantics("egcwa", engine=engine).model_set(union)
        }
        assert observed == expected, engine
