"""Tests for the 2QBF solver (repro.qbf)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.logic.formula import And, Not, Or, Var
from repro.qbf.formula import (
    QBF2,
    dnf_formula,
    exists_forall,
    forall_exists,
    substitute,
)
from repro.qbf.solver import (
    is_valid,
    solve_qbf2_brute,
    solve_qbf2_cegar,
)


@st.composite
def qbf2s(draw):
    num_x = draw(st.integers(1, 3))
    num_y = draw(st.integers(1, 3))
    x = [f"x{i}" for i in range(num_x)]
    y = [f"y{i}" for i in range(num_y)]
    pool = x + y
    num_terms = draw(st.integers(1, 4))
    terms = []
    for _ in range(num_terms):
        chosen = draw(
            st.lists(st.sampled_from(pool), min_size=1, max_size=3,
                     unique=True)
        )
        signs = draw(
            st.lists(st.booleans(), min_size=len(chosen),
                     max_size=len(chosen))
        )
        positive = {a for a, s in zip(chosen, signs) if s}
        negative = {a for a, s in zip(chosen, signs) if not s}
        terms.append((positive, negative))
    exists_first = draw(st.booleans())
    matrix = dnf_formula(terms)
    return QBF2(exists_first, frozenset(x), frozenset(y), matrix)


class TestSubstitute:
    def test_constants_simplify(self):
        formula = And(Var("a"), Or(Var("b"), Not(Var("a"))))
        reduced = substitute(formula, {"a": True})
        assert reduced == Var("b")

    def test_full_substitution_is_constant(self):
        formula = Or(Var("a"), Var("b"))
        from repro.logic.formula import Top

        assert isinstance(substitute(formula, {"a": True, "b": False}), Top)

    def test_implication_and_iff(self):
        from repro.logic.formula import Iff, Implies

        assert substitute(
            Implies(Var("a"), Var("b")), {"a": False}
        ).evaluate(set())
        reduced = substitute(Iff(Var("a"), Var("b")), {"a": True})
        assert reduced == Var("b")


class TestQbf2Structure:
    def test_blocks_must_not_overlap(self):
        with pytest.raises(ReproError):
            exists_forall(["x"], ["x"], Var("x"))

    def test_matrix_atoms_must_be_quantified(self):
        with pytest.raises(ReproError):
            exists_forall(["x"], ["y"], Var("z"))

    def test_negated_flips_quantifiers(self):
        qbf = exists_forall(["x"], ["y"], Var("x"))
        dual = qbf.negated()
        assert not dual.exists_first
        assert solve_qbf2_brute(qbf).valid != solve_qbf2_brute(dual).valid


class TestKnownInstances:
    def test_trivial_valid_exists_forall(self):
        # ∃x ∀y: (x∧y) ∨ (x∧¬y) — pick x.
        qbf = exists_forall(
            ["x"], ["y"], dnf_formula([({"x", "y"}, set()),
                                       ({"x"}, {"y"})])
        )
        assert is_valid(qbf, engine="brute")
        assert is_valid(qbf, engine="cegar")

    def test_invalid_exists_forall(self):
        # ∃x ∀y: x∧¬y — y=true refutes every x.
        qbf = exists_forall(["x"], ["y"], dnf_formula([({"x"}, {"y"})]))
        assert not is_valid(qbf, engine="brute")
        assert not is_valid(qbf, engine="cegar")

    def test_forall_exists_valid(self):
        # ∀x ∃y: (x∧y) ∨ (¬x∧¬y) — choose y = x.
        qbf = forall_exists(
            ["x"], ["y"], dnf_formula([({"x", "y"}, set()),
                                       (set(), {"x", "y"})])
        )
        assert is_valid(qbf, engine="brute")
        assert is_valid(qbf, engine="cegar")

    def test_witness_returned_for_valid_exists(self):
        qbf = exists_forall(
            ["x"], ["y"], dnf_formula([({"x", "y"}, set()),
                                       ({"x"}, {"y"})])
        )
        result = solve_qbf2_cegar(qbf)
        assert result.valid and result.witness == {"x": True}

    def test_unknown_engine_rejected(self):
        qbf = exists_forall(["x"], ["y"], dnf_formula([({"x"}, set())]))
        with pytest.raises(ValueError):
            is_valid(qbf, engine="magic")


class TestCegarAgainstBrute:
    @given(qbf2s())
    @settings(max_examples=40)
    def test_agreement(self, qbf):
        assert solve_qbf2_cegar(qbf).valid == solve_qbf2_brute(qbf).valid

    @given(qbf2s())
    @settings(max_examples=20)
    def test_witness_is_genuine(self, qbf):
        result = solve_qbf2_cegar(qbf)
        if qbf.exists_first and result.valid:
            # Verify ∀Y under the witness by brute inner check.
            import itertools

            y_atoms = sorted(qbf.y)
            for bits in itertools.product([False, True],
                                          repeat=len(y_atoms)):
                assignment = dict(result.witness)
                assignment.update(dict(zip(y_atoms, bits)))
                truth = {a for a, v in assignment.items() if v}
                assert qbf.matrix.evaluate(truth)
