"""Determinism of the random-database generators.

The benchmark and differential suites are only reproducible if every
generator in :mod:`repro.workloads.random_db` is a pure function of its
seed.  These tests pin that down: an integer seed and an explicitly
constructed ``random.Random`` with the same seed produce byte-identical
databases, repeated builds of a whole suite have identical digests, and
a shared ``Random`` instance threads state across consecutive calls.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.workloads import (
    random_deductive_db,
    random_normal_db,
    random_positive_db,
    random_stratified_db,
)

GENERATORS = {
    "positive": lambda seed: random_positive_db(6, 8, seed=seed),
    "deductive": lambda seed: random_deductive_db(6, 8, seed=seed),
    "stratified": lambda seed: random_stratified_db(6, 8, seed=seed),
    "normal": lambda seed: random_normal_db(
        6, 8, ic_fraction=0.2, seed=seed
    ),
}


def digest(db) -> str:
    """A canonical content digest of a database (clauses + vocabulary)."""
    text = repr((sorted(map(str, db)), sorted(db.vocabulary)))
    return hashlib.sha256(text.encode()).hexdigest()


@pytest.mark.parametrize("regime", sorted(GENERATORS))
@pytest.mark.parametrize("seed", [0, 1, 7, 12345])
def test_int_seed_reproduces(regime, seed):
    build = GENERATORS[regime]
    assert digest(build(seed)) == digest(build(seed))


@pytest.mark.parametrize("regime", sorted(GENERATORS))
@pytest.mark.parametrize("seed", [0, 3, 99])
def test_int_seed_equals_explicit_random(regime, seed):
    """``seed=n`` and ``seed=random.Random(n)`` are byte-identical."""
    build = GENERATORS[regime]
    assert digest(build(seed)) == digest(build(random.Random(seed)))


@pytest.mark.parametrize("regime", sorted(GENERATORS))
def test_shared_rng_threads_state(regime):
    """A caller-owned Random is advanced by each call, so consecutive
    calls on one instance replay exactly against a fresh instance."""
    build = GENERATORS[regime]
    rng_a, rng_b = random.Random(42), random.Random(42)
    first_a, second_a = build(rng_a), build(rng_a)
    first_b, second_b = build(rng_b), build(rng_b)
    assert digest(first_a) == digest(first_b)
    assert digest(second_a) == digest(second_b)
    # And the two consecutive draws genuinely differ (state advanced).
    assert digest(first_a) != digest(second_a)


def test_suite_digest_is_stable():
    """Two builds of a whole benchmark-style suite are identical."""

    def build_suite() -> str:
        parts = []
        for regime in sorted(GENERATORS):
            for seed in range(20):
                parts.append(digest(GENERATORS[regime](seed)))
        return hashlib.sha256("".join(parts).encode()).hexdigest()

    assert build_suite() == build_suite()


def test_distinct_seeds_distinct_databases():
    """Seeds actually vary the output (no accidental constant family)."""
    for regime, build in GENERATORS.items():
        digests = {digest(build(seed)) for seed in range(20)}
        assert len(digests) > 10, regime
