"""Tests for the hardness reductions (repro.complexity.reductions)."""

import pytest
from hypothesis import given, settings

from repro.complexity.reductions import (
    cnf_to_database,
    database_to_cnf_clauses,
    dnf_terms,
    has_unique_minimal_model,
    qbf_to_dsm_existence,
    qbf_to_minimal_entailment,
    qbf_to_pdsm_existence,
    qbf_to_perf_existence,
    to_normal_program,
    unsat_to_ddr_formula,
    unsat_to_ddr_literal,
    unsat_to_nlp_unique_minimal,
    unsat_to_uminsat,
)
from repro.complexity.verify import check_reduction
from repro.errors import ReproError
from repro.logic.atoms import Literal
from repro.logic.formula import And, Not, Or, Var
from repro.logic.interpretation import all_interpretations
from repro.logic.parser import parse_database
from repro.models.enumeration import minimal_models_brute
from repro.qbf.formula import exists_forall, forall_exists, dnf_formula
from repro.qbf.solver import solve_qbf2_brute
from repro.sat.solver import is_satisfiable
from repro.semantics import get_semantics
from repro.workloads import random_cnf, random_qbf2

from test_qbf import qbf2s


def small_qbfs():
    qbfs = [random_qbf2(2, 2, num_terms=3, width=3, seed=s) for s in range(8)]
    qbfs.append(
        exists_forall(
            ["x1"], ["y1"],
            dnf_formula([(("x1", "y1"), ()), (("x1",), ("y1",))]),
        )
    )
    qbfs.append(
        exists_forall(["x1"], ["y1"], dnf_formula([(("x1",), ("y1",))]))
    )
    return qbfs


def small_cnfs():
    cnfs = [random_cnf(3, 5, seed=s) for s in range(8)]
    cnfs.append([frozenset({Literal.pos("x1")}),
                 frozenset({Literal.neg("x1")})])
    return cnfs


class TestDnfTerms:
    def test_decomposition(self):
        matrix = Or(And(Var("a"), Not(Var("b"))), Var("c"))
        assert dnf_terms(matrix) == [
            (frozenset({"a"}), frozenset({"b"})),
            (frozenset({"c"}), frozenset()),
        ]

    def test_rejects_non_dnf(self):
        with pytest.raises(ReproError):
            dnf_terms(And(Or(Var("a"), Var("b")), Var("c")))


class TestQbfToMinimalEntailment:
    def test_output_is_positive_ddb(self):
        instance = qbf_to_minimal_entailment(small_qbfs()[0])
        assert instance.db.is_positive

    def test_requires_exists_forall(self):
        qbf = forall_exists(["x"], ["y"], dnf_formula([(("x",), ())]))
        with pytest.raises(ReproError):
            qbf_to_minimal_entailment(qbf)

    def test_equivalence_on_batch(self):
        report = check_reduction(
            "qbf→mm",
            small_qbfs(),
            lambda q: solve_qbf2_brute(q).valid,
            lambda q: any(
                "w" in m
                for m in minimal_models_brute(
                    qbf_to_minimal_entailment(q).db
                )
            ),
        )
        assert report.ok, report.render()
        assert 0 < report.yes_instances < report.total

    def test_gcwa_literal_form_of_the_contract(self):
        """valid ⟺ GCWA(T) does NOT infer ¬w (the Table 1 hardness)."""
        for qbf in small_qbfs()[:4] + small_qbfs()[-2:]:
            valid = solve_qbf2_brute(qbf).valid
            instance = qbf_to_minimal_entailment(qbf)
            inferred = get_semantics("gcwa").infers_literal(
                instance.db, instance.query_literal
            )
            assert inferred == (not valid)


class TestQbfToStableExistence:
    def test_dsm_instance_has_no_integrity_clauses(self):
        instance = qbf_to_dsm_existence(small_qbfs()[0])
        assert not instance.db.has_integrity_clauses
        assert instance.db.has_negation

    def test_dsm_equivalence(self):
        report = check_reduction(
            "qbf→dsm",
            small_qbfs(),
            lambda q: solve_qbf2_brute(q).valid,
            lambda q: get_semantics("dsm").has_model(
                qbf_to_dsm_existence(q).db
            ),
        )
        assert report.ok, report.render()
        assert 0 < report.yes_instances < report.total

    def test_pdsm_equivalence(self):
        report = check_reduction(
            "qbf→pdsm",
            small_qbfs(),
            lambda q: solve_qbf2_brute(q).valid,
            lambda q: get_semantics("pdsm").has_model(
                qbf_to_pdsm_existence(q).db
            ),
        )
        assert report.ok, report.render()

    def test_perf_equivalence(self):
        report = check_reduction(
            "qbf→perf",
            small_qbfs(),
            lambda q: solve_qbf2_brute(q).valid,
            lambda q: get_semantics("perf").has_model(
                qbf_to_perf_existence(q).db
            ),
        )
        assert report.ok, report.render()


class TestSatToModelExistence:
    def test_cnf_round_trip_preserves_models(self):
        cnf = small_cnfs()[0]
        db = cnf_to_database(cnf)
        back = database_to_cnf_clauses(db)
        assert {frozenset(c) for c in back} == {frozenset(c) for c in cnf}

    def test_existence_matches_sat(self):
        report = check_reduction(
            "sat→egcwa-existence",
            small_cnfs(),
            is_satisfiable,
            lambda cnf: get_semantics("egcwa").has_model(
                cnf_to_database(cnf)
            ),
        )
        assert report.ok, report.render()


class TestUminsat:
    def test_unique_minimal_detection(self):
        assert has_unique_minimal_model(parse_database("a. b :- a."))
        assert not has_unique_minimal_model(parse_database("a | b."))
        assert not has_unique_minimal_model(parse_database("a. :- a."))

    def test_reduction_equivalence(self):
        report = check_reduction(
            "unsat→uminsat",
            small_cnfs(),
            lambda cnf: not is_satisfiable(cnf),
            lambda cnf: has_unique_minimal_model(unsat_to_uminsat(cnf)),
        )
        assert report.ok, report.render()
        assert report.yes_instances >= 1

    def test_reduction_output_has_no_integrity_clauses(self):
        db = unsat_to_uminsat(small_cnfs()[0])
        assert not db.has_integrity_clauses

    def test_normal_program_transform_preserves_minimal_models(self):
        db = parse_database("a | b | c. d :- a.")
        normal = to_normal_program(db)
        assert normal.is_normal_nondisjunctive
        assert set(minimal_models_brute(db)) == set(
            minimal_models_brute(normal)
        )

    def test_lemma_55_pipeline(self):
        report = check_reduction(
            "unsat→nlp-unique-minimal (Lemma 5.5)",
            small_cnfs(),
            lambda cnf: not is_satisfiable(cnf),
            lambda cnf: has_unique_minimal_model(
                unsat_to_nlp_unique_minimal(cnf)
            ),
        )
        assert report.ok, report.render()
        # and the target really is a normal logic program:
        assert unsat_to_nlp_unique_minimal(
            small_cnfs()[0]
        ).is_normal_nondisjunctive

    def test_fresh_atom_clash_rejected(self):
        with pytest.raises(ValueError):
            unsat_to_uminsat([frozenset({Literal.pos("a_fresh")})])


class TestUnsatToClosure:
    def test_formula_reduction_no_ics(self):
        instance = unsat_to_ddr_formula(small_cnfs()[0])
        assert instance.db.is_positive

    def test_formula_reduction_equivalence_ddr_and_pws(self):
        for name in ("ddr", "pws"):
            report = check_reduction(
                f"unsat→{name}-formula",
                small_cnfs(),
                lambda cnf: not is_satisfiable(cnf),
                lambda cnf, name=name: get_semantics(name).infers(
                    unsat_to_ddr_formula(cnf).db,
                    unsat_to_ddr_formula(cnf).formula,
                ),
            )
            assert report.ok, report.render()
            assert report.yes_instances >= 1

    def test_literal_reduction_uses_ics(self):
        instance = unsat_to_ddr_literal(small_cnfs()[0])
        assert instance.db.has_integrity_clauses

    def test_literal_reduction_equivalence(self):
        for name in ("ddr", "pws"):
            report = check_reduction(
                f"unsat→{name}-literal",
                small_cnfs(),
                lambda cnf: not is_satisfiable(cnf),
                lambda cnf, name=name: get_semantics(name).infers_literal(
                    unsat_to_ddr_literal(cnf).db,
                    unsat_to_ddr_literal(cnf).literal,
                ),
            )
            assert report.ok, report.render()

    def test_fresh_atom_clash_rejected(self):
        with pytest.raises(ValueError):
            unsat_to_ddr_literal([frozenset({Literal.pos("u_fresh")})])


@given(qbf2s())
@settings(max_examples=10)
def test_mm_reduction_property(qbf):
    """Property form of the central reduction on arbitrary 2QBFs
    (normalized to the ∃∀ form)."""
    if not qbf.exists_first:
        return
    valid = solve_qbf2_brute(qbf).valid
    instance = qbf_to_minimal_entailment(qbf)
    witness = any(
        "w" in m for m in minimal_models_brute(instance.db)
    )
    assert witness == valid


class TestReductionsAtOracleScale:
    """Medium-size instances decided via the oracle engines (brute force
    would be 2^20-ish here), cross-checked against the CEGAR 2QBF solver."""

    def test_mm_reduction_medium(self):
        from repro.qbf.solver import solve_qbf2_cegar
        from repro.sat.minimal import MinimalModelSolver
        from repro.logic.formula import Var

        for seed in (0, 1, 2, 3):
            qbf = random_qbf2(3, 3, num_terms=4, width=3, seed=seed)
            valid = solve_qbf2_cegar(qbf).valid
            instance = qbf_to_minimal_entailment(qbf)
            witness = MinimalModelSolver(
                instance.db
            ).find_minimal_satisfying(Var("w"))
            assert (witness is not None) == valid, seed

    def test_dsm_existence_medium(self):
        from repro.qbf.solver import solve_qbf2_cegar

        for seed in (0, 1, 2):
            qbf = random_qbf2(3, 3, num_terms=4, width=3, seed=seed)
            valid = solve_qbf2_cegar(qbf).valid
            db = qbf_to_dsm_existence(qbf).db
            assert get_semantics("dsm").has_model(db) == valid, seed

    def test_perf_existence_medium(self):
        from repro.qbf.solver import solve_qbf2_cegar

        for seed in (0, 1):
            qbf = random_qbf2(3, 2, num_terms=3, width=3, seed=seed)
            valid = solve_qbf2_cegar(qbf).valid
            db = qbf_to_perf_existence(qbf).db
            assert get_semantics("perf").has_model(db) == valid, seed


class TestReductionReportRender:
    """The report renderer pins: full text for small failure sets, an
    explicit elision marker beyond RENDER_LIMIT."""

    def _report(self, num_disagreements):
        from repro.complexity.verify import ReductionReport

        return ReductionReport(
            name="demo",
            total=10,
            yes_instances=4,
            disagreements=[
                f"inst{i}: source=True target=False"
                for i in range(num_disagreements)
            ],
        )

    def test_ok_report_has_no_elision(self):
        report = self._report(0)
        assert report.ok
        assert "more" not in report.render()

    def test_few_disagreements_all_shown(self):
        report = self._report(3)
        text = report.render()
        for i in range(3):
            assert f"inst{i}" in text
        assert "…and" not in text

    def test_many_disagreements_elided_with_marker(self):
        report = self._report(7)
        text = report.render()
        # The first RENDER_LIMIT are spelled out, the rest counted.
        for i in range(3):
            assert f"inst{i}" in text
        assert "inst3" not in text
        assert "…and 4 more" in text

    def test_marker_count_tracks_limit(self):
        report = self._report(4)
        assert "…and 1 more" in report.render()
