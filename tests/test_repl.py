"""Tests for the interactive REPL (I/O injected)."""

import io

import pytest

from repro.logic.parser import parse_database
from repro.repl import Repl


def run_lines(*lines, db=None, semantics="egcwa"):
    stdin = io.StringIO("\n".join(lines) + "\n")
    stdout = io.StringIO()
    repl = Repl(db=db, semantics=semantics, stdin=stdin, stdout=stdout)
    repl.run()
    return stdout.getvalue()


class TestQueries:
    def test_cautious_query(self, simple_db):
        out = run_lines("~a | ~b", db=simple_db)
        assert "EGCWA |= " in out and "True" in out

    def test_negative_answer_shows_counter_model(self, simple_db):
        out = run_lines("c", db=simple_db)
        assert "False" in out
        assert "counter-model: {b}" in out

    def test_brave_mode(self, simple_db):
        out = run_lines(":mode brave", "c", db=simple_db)
        assert "mode: brave" in out
        assert "True" in out

    def test_semantics_switch(self, simple_db):
        out = run_lines(":semantics gcwa", "~a | ~b", db=simple_db)
        assert "semantics: gcwa" in out
        assert "GCWA |= " in out and "False" in out

    def test_parse_error_is_friendly(self, simple_db):
        out = run_lines("a &", db=simple_db)
        assert "error:" in out


class TestCommands:
    def test_add_and_models(self):
        out = run_lines(":add a | b.", ":models")
        assert "added: a | b." in out
        assert "2 model(s)" in out

    def test_db_command(self, simple_db):
        out = run_lines(":db", db=simple_db)
        assert "a | b." in out

    def test_empty_db_message(self):
        out = run_lines(":db")
        assert "(empty database)" in out

    def test_exists(self, simple_db):
        out = run_lines(":exists", db=simple_db)
        assert "True" in out

    def test_closure(self):
        db = parse_database("a. a | b. c :- d.")
        out = run_lines(":closure", db=db)
        assert "WGCWA: c, d" in out
        assert "GCWA:  b, c, d" in out

    def test_closure_rejects_negation(self, unstratified_db):
        out = run_lines(":closure", db=unstratified_db)
        assert "deductive" in out

    def test_stratify(self, stratified_db):
        out = run_lines(":stratify", db=stratified_db)
        assert "S1:" in out and "S2:" in out

    def test_stratify_negative(self, unstratified_db):
        out = run_lines(":stratify", db=unstratified_db)
        assert "not stratified" in out

    def test_stats(self, simple_db):
        out = run_lines("a | b", ":stats", db=simple_db)
        assert "queries_answered: 1" in out

    def test_load(self, tmp_path):
        path = tmp_path / "db.ddb"
        path.write_text("x | y.\n")
        out = run_lines(f":load {path}", ":models")
        assert "loaded 1 clauses" in out
        assert "{x}" in out

    def test_load_missing_file(self):
        out = run_lines(":load /nonexistent.ddb")
        assert "error:" in out

    def test_unknown_command(self):
        out = run_lines(":frobnicate")
        assert "unknown command" in out

    def test_help(self):
        out = run_lines(":help")
        assert ":semantics NAME" in out

    def test_quit_stops_processing(self, simple_db):
        out = run_lines(":quit", ":models", db=simple_db)
        assert "model(s)" not in out

    def test_mode_validation(self):
        out = run_lines(":mode optimistic")
        assert "must be" in out


class TestExplainCommand:
    def test_counter_model_shown(self, simple_db):
        out = run_lines(":explain c", db=simple_db)
        assert "counter-model" in out
        assert "derivation of c" in out  # c is possibly true

    def test_inferred_query(self, simple_db):
        out = run_lines(":explain a | b", db=simple_db)
        assert "no counter-model exists" in out

    def test_underivable_atom(self):
        db = parse_database("a. b :- c.")
        out = run_lines(":explain b", db=db)
        assert "not possibly true" in out

    def test_usage_message(self):
        out = run_lines(":explain")
        assert "usage" in out
