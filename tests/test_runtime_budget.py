"""Budget-governance tests (repro.runtime.budget + the hooked layers).

Three claims are pinned here:

* budgets trip at the *right layer* for each semantics family — SAT-call
  ceilings in the oracle engines, node ceilings in the brute enumerator,
  deadlines inside the CDCL main loop and the Σ₂ᵖ machinery;
* a tripped :class:`~repro.runtime.budget.BudgetExceeded` carries an
  *accurate* resource account (the counters include the tripping
  attempt: ceiling ``N`` trips with usage ``N + 1``);
* a *generous* budget changes no answers — the governed oracle engines
  agree with the ungoverned ones across the seeded differential corpus;
* a budget-exhausted evaluation returns/raises within **2×** the
  requested wall-clock deadline (the acceptance bound).
"""

from __future__ import annotations

import time

import pytest

from repro.logic.parser import parse_database, parse_formula
from repro.runtime import (
    NODE_CHECK_INTERVAL,
    RUNTIME_STATS,
    Budget,
    BudgetExceeded,
    Status,
    budget_scope,
    check_deadline,
    current_scope,
    note_nodes,
    note_sat_call,
)
from repro.semantics import get_semantics
from repro.workloads import random_positive_db, random_query_formula

from test_differential import COUNTS, SEMANTICS_FOR, build_db


@pytest.fixture(autouse=True)
def _reset_runtime_stats():
    RUNTIME_STATS.reset()
    yield
    RUNTIME_STATS.reset()


def php_clauses(pigeons, holes):
    """The (unsatisfiable for pigeons > holes) pigeonhole CNF — hard for
    resolution-based solvers, so a deadline reliably cuts it off."""
    def var(p, h):
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


# ----------------------------------------------------------------------
# Budget and scope unit behaviour
# ----------------------------------------------------------------------
class TestBudgetObject:
    def test_negative_limits_rejected(self):
        for kwargs in (
            {"wall_ms": -1}, {"max_sat_calls": -1}, {"max_nodes": -1},
        ):
            with pytest.raises(ValueError):
                Budget(**kwargs)

    def test_unbounded_default(self):
        assert Budget().unbounded
        assert not Budget(max_sat_calls=3).unbounded

    def test_scaled_scales_only_set_limits(self):
        budget = Budget(wall_ms=100, max_sat_calls=10).scaled(2)
        assert budget.wall_ms == 200
        assert budget.max_sat_calls == 20
        assert budget.max_nodes is None

    def test_render_marks_unbounded(self):
        assert Budget(max_sat_calls=5).render() == (
            "wall -, sat-calls 5, nodes -"
        )


class TestBudgetScope:
    def test_hooks_are_noops_without_scope(self):
        assert current_scope() is None
        note_sat_call()
        note_nodes(10)
        check_deadline()  # nothing raises

    def test_sat_call_ceiling_trips_with_inclusive_count(self):
        with budget_scope(Budget(max_sat_calls=5)) as scope:
            for _ in range(5):
                note_sat_call()
            with pytest.raises(BudgetExceeded) as info:
                note_sat_call()
        assert info.value.resource == "sat_calls"
        # The account includes the tripping attempt: ceiling 5, usage 6.
        assert info.value.usage.sat_calls == 6
        assert scope.sat_calls == 6

    def test_node_ceiling_trips_with_inclusive_count(self):
        with budget_scope(Budget(max_nodes=10)):
            with pytest.raises(BudgetExceeded) as info:
                for _ in range(11):
                    note_nodes(1)
        assert info.value.resource == "nodes"
        assert info.value.usage.nodes == 11

    def test_wall_deadline_trips(self):
        with budget_scope(Budget(wall_ms=1)):
            time.sleep(0.005)
            with pytest.raises(BudgetExceeded) as info:
                check_deadline()
        assert info.value.resource == "wall_ms"
        assert info.value.usage.elapsed_ms >= 1

    def test_node_wall_check_is_periodic(self):
        # Under the check interval no clock is consulted, so an expired
        # deadline goes unnoticed by note_nodes alone...
        with budget_scope(Budget(wall_ms=1)):
            time.sleep(0.005)
            note_nodes(NODE_CHECK_INTERVAL - 1)
            # ...until the interval-th node.
            with pytest.raises(BudgetExceeded):
                note_nodes(1)

    def test_nested_scopes_cascade_to_parent(self):
        with budget_scope(Budget(max_sat_calls=3)):
            with pytest.raises(BudgetExceeded) as info:
                with budget_scope(Budget()):  # inner unbounded
                    for _ in range(4):
                        note_sat_call()
        assert info.value.resource == "sat_calls"

    def test_inner_tighter_scope_trips_first(self):
        with budget_scope(Budget(max_sat_calls=100)) as outer:
            with budget_scope(Budget(max_sat_calls=1)) as inner:
                note_sat_call()
                with pytest.raises(BudgetExceeded):
                    note_sat_call()
        assert inner.sat_calls == 2
        assert outer.sat_calls == 2  # cascade kept the parent accurate

    def test_exceeded_carries_budget_and_counts_stats(self):
        budget = Budget(max_sat_calls=1)
        with budget_scope(budget):
            note_sat_call()
            with pytest.raises(BudgetExceeded) as info:
                note_sat_call()
        assert info.value.budget is budget
        assert RUNTIME_STATS.budgets_exceeded == 1
        assert RUNTIME_STATS.scopes_entered == 1


# ----------------------------------------------------------------------
# The right layer trips for each engine family
# ----------------------------------------------------------------------
class TestRightLayer:
    def setup_method(self):
        self.db = parse_database("a | b. c :- a. d | e :- b.")
        self.query = parse_formula("~a | ~b")

    def test_oracle_engine_trips_on_sat_calls(self):
        semantics = get_semantics("gcwa", engine="oracle")
        with budget_scope(Budget(max_sat_calls=1)):
            with pytest.raises(BudgetExceeded) as info:
                semantics.infers(self.db, self.query)
        assert info.value.resource == "sat_calls"
        assert info.value.usage.sat_calls == 2

    def test_brute_engine_trips_on_nodes(self):
        semantics = get_semantics("gcwa", engine="brute")
        with budget_scope(Budget(max_nodes=4)):
            with pytest.raises(BudgetExceeded) as info:
                semantics.infers(self.db, self.query)
        assert info.value.resource == "nodes"
        # Brute never touches the SAT layer, so only nodes accumulated.
        assert info.value.usage.sat_calls == 0
        assert info.value.usage.nodes == 5

    def test_theta_machine_trips_on_sat_calls(self):
        from repro.complexity.machines import theta_inference

        with budget_scope(Budget(max_sat_calls=3)):
            with pytest.raises(BudgetExceeded) as info:
                theta_inference(self.db, self.query)
        assert info.value.resource == "sat_calls"

    def test_sigma2_oracle_checks_deadline_per_query(self):
        from repro.complexity.oracles import Sigma2Oracle

        oracle = Sigma2Oracle()
        with budget_scope(Budget(wall_ms=1)):
            time.sleep(0.005)
            with pytest.raises(BudgetExceeded) as info:
                oracle.query(self.db, self.query)
        assert info.value.resource == "wall_ms"
        # The deadline is checked before the query is counted.
        assert oracle.queries == 0

    def test_dpll_counts_search_nodes(self):
        from repro.sat.dpll import solve_dpll

        with budget_scope(Budget()) as scope:
            solve_dpll(php_clauses(4, 3))
        assert scope.nodes > 0

    def test_parallel_goes_serial_under_budget(self):
        from repro.engine.parallel import parallel_all_models
        from repro.models.enumeration import all_models

        db = random_positive_db(10, 8, seed=3)
        with budget_scope(Budget()) as scope:
            governed = parallel_all_models(db, max_workers=4)
        # The serial path ran (nodes were ticked in-process) and the
        # answer matches the serial enumerator exactly.
        assert scope.nodes >= 2 ** 10
        assert governed == all_models(db)


# ----------------------------------------------------------------------
# Deadline acceptance: cut off within 2x the requested wall clock
# ----------------------------------------------------------------------
class TestDeadlineWithinTwofold:
    WALL_MS = 100.0

    def _assert_cutoff(self, fn):
        start = time.monotonic()
        with budget_scope(Budget(wall_ms=self.WALL_MS)):
            with pytest.raises(BudgetExceeded) as info:
                fn()
        elapsed_ms = (time.monotonic() - start) * 1000.0
        assert info.value.resource == "wall_ms"
        assert elapsed_ms < 2 * self.WALL_MS, elapsed_ms
        return info.value

    def test_cdcl_cut_off_mid_search(self):
        from repro.sat.cdcl import CdclSolver

        solver = CdclSolver()
        for clause in php_clauses(8, 7):  # ~seconds if left alone
            solver.add_clause(clause)
        self._assert_cutoff(solver.solve)
        # The deadline poll backtracked to level 0: still reusable.
        assert solver.add_clause([1])

    def test_brute_enumeration_cut_off(self):
        db = random_positive_db(18, 20, seed=0)  # 2^18 candidates
        semantics = get_semantics("gcwa", engine="brute")
        error = self._assert_cutoff(lambda: semantics.model_set(db))
        assert error.usage.nodes > 0

    def test_resilient_outcome_within_twofold(self):
        db = random_positive_db(18, 20, seed=1)
        semantics = get_semantics(
            "gcwa", engine="resilient", budget=Budget(wall_ms=self.WALL_MS)
        )
        start = time.monotonic()
        outcome = semantics.run("model_set", db)
        elapsed_ms = (time.monotonic() - start) * 1000.0
        assert outcome.status is Status.TIMEOUT
        assert outcome.partial is not None
        assert elapsed_ms < 2 * self.WALL_MS, elapsed_ms


# ----------------------------------------------------------------------
# A generous budget changes no answers
# ----------------------------------------------------------------------
GENEROUS = Budget(wall_ms=60_000, max_sat_calls=200_000, max_nodes=5_000_000)


@pytest.mark.parametrize("regime", sorted(COUNTS))
def test_generous_budget_changes_no_answers(regime):
    """Every (regime, seed) database: the oracle engines under a generous
    budget give byte-identical answers to the ungoverned oracle engines
    on formula inference and model existence."""
    for seed in range(0, COUNTS[regime], 2):  # every other seed: 110 DBs
        db = build_db(regime, seed)
        query = random_query_formula(
            sorted(db.vocabulary), depth=2, seed=seed
        )
        for name in SEMANTICS_FOR[regime]:
            semantics = get_semantics(name, engine="oracle")
            expected_infers = semantics.infers(db, query)
            expected_has = semantics.has_model(db)
            with budget_scope(GENEROUS) as scope:
                assert semantics.infers(db, query) == expected_infers, (
                    regime, seed, name, "infers")
                assert semantics.has_model(db) == expected_has, (
                    regime, seed, name, "has_model")
            assert scope.exceeded is None


def test_generous_budget_brute_engines_agree():
    """Same claim for the node-governed brute engines (smaller sample:
    brute is the expensive side)."""
    for seed in range(0, 10):
        db = build_db("positive", seed)
        query = random_query_formula(
            sorted(db.vocabulary), depth=2, seed=seed
        )
        for name in ("gcwa", "egcwa", "dsm"):
            semantics = get_semantics(name, engine="brute")
            expected = semantics.infers(db, query)
            with budget_scope(GENEROUS):
                assert semantics.infers(db, query) == expected
