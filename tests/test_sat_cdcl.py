"""Tests for the CDCL core (repro.sat.cdcl) and the DPLL reference."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BudgetExceededError, SolverError
from repro.sat.cdcl import CdclSolver, luby
from repro.sat.dpll import solve_dpll


def brute_sat(clauses, num_vars):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any((l > 0) == bits[abs(l) - 1] for l in clause)
            for clause in clauses
        ):
            return True
    return False


@st.composite
def int_cnfs(draw):
    num_vars = draw(st.integers(min_value=1, max_value=7))
    num_clauses = draw(st.integers(min_value=1, max_value=20))
    clauses = [
        draw(
            st.lists(
                st.integers(min_value=1, max_value=num_vars).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=3,
            )
        )
        for _ in range(num_clauses)
    ]
    return num_vars, clauses


def _solve_cdcl(clauses):
    solver = CdclSolver()
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    return solver, (solver.solve() if ok else False)


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestBasics:
    def test_empty_solver_is_sat(self):
        assert CdclSolver().solve()

    def test_unit_clauses(self):
        solver = CdclSolver()
        solver.add_clause([1])
        solver.add_clause([-2])
        assert solver.solve()
        assert solver.model() == {1}

    def test_empty_clause_is_unsat(self):
        solver = CdclSolver()
        assert not solver.add_clause([])
        assert not solver.solve()

    def test_conflicting_units(self):
        solver = CdclSolver()
        solver.add_clause([1])
        assert not solver.add_clause([-1])
        assert not solver.solve()

    def test_tautological_clause_ignored(self):
        solver = CdclSolver()
        assert solver.add_clause([1, -1])
        assert solver.solve()

    def test_zero_literal_rejected(self):
        with pytest.raises(SolverError):
            CdclSolver().add_clause([1, 0])

    def test_model_before_solve_raises(self):
        with pytest.raises(SolverError):
            CdclSolver().model()

    def test_classic_unsat_core(self):
        solver = CdclSolver()
        for clause in ([1, 2], [1, -2], [-1, 2], [-1, -2]):
            solver.add_clause(clause)
        assert not solver.solve()


class TestAgainstGroundTruth:
    @given(int_cnfs())
    @settings(max_examples=80)
    def test_matches_brute_force(self, instance):
        num_vars, clauses = instance
        solver, result = _solve_cdcl(clauses)
        assert result == brute_sat(clauses, num_vars)
        if result:
            model = solver.model()
            assert all(
                any((l > 0) == (abs(l) in model) for l in clause)
                for clause in clauses
            )

    @given(int_cnfs())
    @settings(max_examples=40)
    def test_matches_dpll(self, instance):
        _num_vars, clauses = instance
        _solver, cdcl_result = _solve_cdcl(clauses)
        dpll_result = solve_dpll(clauses)
        assert cdcl_result == (dpll_result is not None)


class TestAssumptions:
    def test_assumptions_constrain(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve([-1])
        assert 2 in solver.model()
        assert not solver.solve([-1, -2])

    def test_assumptions_do_not_persist(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert not solver.solve([-1, -2])
        assert solver.solve()  # constraint gone

    def test_contradictory_assumptions(self):
        solver = CdclSolver()
        solver.add_clause([1])
        assert not solver.solve([1, -1])

    def test_incremental_clause_addition(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve()
        solver.add_clause([-1])
        assert solver.solve()
        assert solver.model() >= {2}
        solver.add_clause([-2])
        assert not solver.solve()
        assert not solver.solve()  # stays unsat


class TestBudget:
    def test_conflict_budget_raises(self):
        # Pigeonhole 5->4 forces many conflicts.
        solver = CdclSolver(max_conflicts=3)
        pigeons, holes = 5, 4
        var = lambda p, h: p * holes + h + 1  # noqa: E731
        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        with pytest.raises(BudgetExceededError):
            solver.solve()


class TestStats:
    def test_stats_accumulate(self):
        solver = CdclSolver()
        for clause in ([1, 2], [1, -2], [-1, 2], [-1, -2]):
            solver.add_clause(clause)
        solver.solve()
        stats = solver.stats.snapshot()
        assert stats["solve_calls"] == 1
        assert stats["conflicts"] >= 1


class TestDpll:
    def test_unsat(self):
        assert solve_dpll([[1], [-1]]) is None

    def test_model_returned(self):
        model = solve_dpll([[1, 2], [-1]])
        assert model == {2}

    def test_empty_input_is_sat(self):
        assert solve_dpll([]) == set()

    def test_pure_literal_toggle(self):
        clauses = [[1, 2], [1, 3], [-2, -3]]
        assert solve_dpll(clauses, use_pure_literals=False) is not None
        assert solve_dpll(clauses, use_pure_literals=True) is not None

    def test_pigeonhole_unsat(self):
        pigeons, holes = 4, 3
        var = lambda p, h: p * holes + h + 1  # noqa: E731
        clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        assert solve_dpll(clauses) is None


class TestLearnedClauseSoundness:
    @given(int_cnfs())
    @settings(max_examples=40)
    def test_learned_clauses_are_entailed(self, instance):
        """Every clause the solver learns is a logical consequence of the
        input CNF (soundness of 1UIP resolution + minimization)."""
        num_vars, clauses = instance
        solver = CdclSolver()
        ok = True
        for clause in clauses:
            ok = solver.add_clause(clause) and ok
        if ok:
            solver.solve()
        for learned in solver.learned_clauses():
            # clauses |= learned  <=>  clauses + ~learned unsatisfiable
            negation = [[-l] for l in learned]
            assert not brute_sat(clauses + negation, num_vars), (
                clauses, learned,
            )

    def test_learned_clause_accessor_shape(self):
        solver = CdclSolver()
        for clause in ([1, 2], [1, -2], [-1, 2], [-1, -2]):
            solver.add_clause(clause)
        solver.solve()
        for clause in solver.learned_clauses():
            assert isinstance(clause, list)
            assert all(isinstance(l, int) and l != 0 for l in clause)


class TestIncrementalStress:
    def test_many_solve_calls_with_interleaved_additions(self):
        """Incremental use across dozens of solve calls stays sound."""
        import random

        rng = random.Random(42)
        solver = CdclSolver()
        reference: list = []
        for step in range(60):
            clause = [
                rng.choice([1, -1]) * rng.randint(1, 6)
                for _ in range(rng.randint(1, 3))
            ]
            reference.append(clause)
            solver.add_clause(clause)
            got = solver.solve()
            expected = brute_sat(reference, 6)
            assert got == expected, (step, reference)
            if not got:
                break
