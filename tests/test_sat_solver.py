"""Tests for the symbolic SAT facade (repro.sat.solver) and enumeration."""

import itertools

import pytest
from hypothesis import given

from repro.errors import SolverError
from repro.logic.atoms import Literal
from repro.logic.formula import And, Not, Or, Var
from repro.logic.parser import parse_database, parse_formula
from repro.sat.enumerate import count_models, iter_models
from repro.sat.solver import (
    SatSolver,
    database_is_consistent,
    entails_classically,
    find_model,
    formula_is_valid,
    is_satisfiable,
)

from conftest import databases
from test_formula import formulas


class TestSatSolverFacade:
    def test_add_clause_and_solve(self):
        solver = SatSolver()
        solver.add_clause([Literal("a"), Literal("b", False)])
        solver.add_unit(Literal("b"))
        assert solver.solve()
        assert solver.model() >= {"a", "b"}

    def test_unsat(self):
        solver = SatSolver()
        solver.add_unit(Literal("a"))
        solver.add_unit(Literal("a", False))
        assert not solver.solve()

    def test_model_before_solve_raises(self):
        with pytest.raises(SolverError):
            SatSolver().model()

    def test_model_restriction(self):
        solver = SatSolver()
        solver.add_unit(Literal("a"))
        solver.add_unit(Literal("b"))
        solver.solve()
        assert solver.model(restrict_to=["a"]) == {"a"}

    def test_assumptions(self):
        solver = SatSolver()
        solver.add_clause([Literal("a"), Literal("b")])
        assert solver.solve([Literal("a", False)])
        assert "b" in solver.model()

    def test_add_database_registers_vocabulary(self):
        db = parse_database("a | b.").with_vocabulary(["z"])
        solver = SatSolver()
        solver.add_database(db)
        assert solver.solve()
        assert "z" not in solver.model(restrict_to=db.vocabulary)

    def test_dpll_engine_agrees(self):
        for engine in ("cdcl", "dpll"):
            solver = SatSolver(engine=engine)
            solver.add_clause([Literal("a"), Literal("b")])
            solver.add_unit(Literal("a", False))
            assert solver.solve()
            assert solver.model() == {"b"}

    def test_unknown_engine_rejected(self):
        with pytest.raises(SolverError):
            SatSolver(engine="nope")

    @given(formulas())
    def test_add_formula_positive_and_negative(self, formula):
        atoms = sorted(formula.atoms())
        sat_positive = SatSolver()
        sat_positive.add_formula(formula, positive=True)
        sat_negative = SatSolver()
        sat_negative.add_formula(formula, positive=False)
        models = [
            {a for a, bit in zip(atoms, bits) if bit}
            for bits in itertools.product([False, True], repeat=len(atoms))
        ]
        has_model = any(formula.evaluate(m) for m in models)
        has_countermodel = any(not formula.evaluate(m) for m in models)
        assert sat_positive.solve() == has_model
        assert sat_negative.solve() == has_countermodel


class TestOneShotHelpers:
    def test_database_is_consistent(self):
        assert database_is_consistent(parse_database("a | b."))
        assert not database_is_consistent(parse_database("a. :- a."))

    def test_find_model_returns_model(self, simple_db):
        model = find_model(simple_db)
        assert model is not None and simple_db.is_model(model)

    def test_find_model_none_when_unsat(self):
        assert find_model(parse_database("a. :- a.")) is None

    def test_formula_is_valid(self):
        assert formula_is_valid(parse_formula("a | ~a"))
        assert not formula_is_valid(parse_formula("a"))

    def test_entails_classically(self, simple_db):
        assert entails_classically(simple_db, parse_formula("a | b"))
        assert entails_classically(simple_db, parse_formula("b | c"))
        assert not entails_classically(simple_db, parse_formula("a"))

    def test_is_satisfiable_both_engines(self):
        cnf = [frozenset({Literal("a")}), frozenset({Literal("a", False)})]
        assert not is_satisfiable(cnf, engine="cdcl")
        assert not is_satisfiable(cnf, engine="dpll")


class TestEnumeration:
    def test_enumerates_all_models(self, simple_db):
        models = set(iter_models(simple_db))
        expected = {
            frozenset(m)
            for m in [{"b"}, {"b", "c"}, {"a", "c"}, {"a", "b", "c"}]
        }
        assert {frozenset(m) for m in models} == expected

    def test_count_models(self, simple_db):
        assert count_models(simple_db) == 4

    def test_max_models_cap(self, simple_db):
        assert len(list(iter_models(simple_db, max_models=2))) == 2

    def test_projection_collapses_duplicates(self, simple_db):
        projected = list(iter_models(simple_db, project=["a"]))
        assert len(projected) == 2  # a true / a false

    def test_formula_constraint(self, simple_db):
        models = list(
            iter_models(simple_db, formula=parse_formula("~c"))
        )
        assert [set(m) for m in models] == [{"b"}]

    def test_empty_projection_yields_single_model(self, simple_db):
        assert len(list(iter_models(simple_db, project=[]))) == 1

    @given(databases())
    def test_enumeration_matches_brute_force(self, db):
        from repro.models.enumeration import all_models

        enumerated = {frozenset(m) for m in iter_models(db)}
        brute = {frozenset(m) for m in all_models(db)}
        assert enumerated == brute
