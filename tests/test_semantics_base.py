"""Tests for the semantics registry and the one-call API."""

import pytest

from repro import has_model, infer, infers_literal, model_set, parse_database, parse_formula
from repro.errors import ReproError
from repro.logic.atoms import Literal
from repro.semantics import SEMANTICS, get_semantics, resolve_name
from repro.semantics.base import literal_formula


class TestRegistry:
    def test_all_ten_semantics_registered(self):
        expected = {
            "gcwa", "ccwa", "egcwa", "ecwa", "circ",
            "ddr", "pws", "perf", "icwa", "dsm", "pdsm",
        }
        assert expected <= set(SEMANTICS)

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("wgcwa", "ddr"),
            ("weak-gcwa", "ddr"),
            ("pms", "pws"),
            ("circumscription", "circ"),
            ("stable", "dsm"),
            ("partial-stable", "pdsm"),
            ("perfect", "perf"),
            ("GCWA", "gcwa"),  # case-insensitive
        ],
    )
    def test_aliases_resolve(self, alias, canonical):
        assert resolve_name(alias) == canonical

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError):
            resolve_name("nonsense")

    def test_get_semantics_passes_kwargs(self):
        semantics = get_semantics("ecwa", p=["a"], z=["b"], engine="brute")
        assert semantics.engine == "brute"
        assert semantics.p == {"a"}

    def test_invalid_engine_rejected(self):
        with pytest.raises(ReproError):
            get_semantics("egcwa", engine="quantum")


class TestConvenienceApi:
    def test_infer(self, simple_db):
        assert infer(simple_db, parse_formula("~a | ~b"), "egcwa")
        assert not infer(simple_db, parse_formula("~a | ~b"), "gcwa")

    def test_infers_literal_accepts_strings(self, simple_db):
        assert not infers_literal(simple_db, "not c", "egcwa")
        assert infers_literal(simple_db, "a | b" if False else "c",
                              "egcwa") is False
        assert infers_literal(simple_db, Literal("c"), "egcwa") is False

    def test_has_model(self, simple_db):
        assert has_model(simple_db, "dsm")

    def test_model_set(self, simple_db):
        models = model_set(simple_db, "egcwa")
        assert {frozenset(m) for m in models} == {
            frozenset({"b"}), frozenset({"a", "c"})
        }

    def test_inconsistent_db_entails_everything(self):
        db = parse_database("a. :- a.")
        assert infer(db, parse_formula("false"), "egcwa")
        assert not has_model(db, "egcwa")


def test_literal_formula_polarity():
    assert literal_formula(Literal("a")).evaluate({"a"})
    assert literal_formula(Literal("a", False)).evaluate(set())
