"""The inference-strength lattice across semantics, as property tests.

For positive (IC-free) DDBs the literature orders the closed-world
semantics by the model sets they select (smaller selected set = stronger
inference):

    M(DB) ⊇ DDR(DB) ⊇ GCWA(DB) ⊇ EGCWA(DB) = MM(DB)
    M(DB) ⊇ DDR(DB) ⊇ PWS(DB)  ⊇ EGCWA(DB)

with GCWA and PWS *incomparable*: a possible model may contain an atom
GCWA negates (in ``{a., a|b.}`` the possible model ``{a, b}`` survives
PWS but not GCWA), and a GCWA model may be unsupported (in
``{a|b., c :- a.}`` the model ``{b, c}`` survives GCWA but not PWS).
Consequently cautious consequence is ordered

    classical ⊆ DDR-inference ⊆ {GCWA-, PWS-}inference ⊆ EGCWA-inference

Every inclusion — and both non-inclusions — is verified here on random
databases.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.models.enumeration import all_models
from repro.semantics import get_semantics
from repro.workloads import random_query_formula

from conftest import ATOMS, positive_databases

#: Generated query formulas (previously a hand-picked five-formula
#: list): a seed-indexed view of the deterministic workload generator,
#: so failures shrink to a reproducible seed.
queries = st.integers(min_value=0, max_value=10**6).map(
    lambda seed: random_query_formula(ATOMS, depth=2, seed=seed)
)


def _models(db, name):
    return {frozenset(m) for m in get_semantics(name).model_set(db)}


@given(positive_databases(max_clauses=4))
def test_model_set_inclusions(db):
    classical = {frozenset(m) for m in all_models(db)}
    ddr = _models(db, "ddr")
    gcwa = _models(db, "gcwa")
    pws = _models(db, "pws")
    egcwa = _models(db, "egcwa")
    assert egcwa <= gcwa <= ddr <= classical
    assert egcwa <= pws <= ddr


@given(positive_databases(max_clauses=4), queries)
def test_inference_strength_ordering(db, query):
    """Smaller model sets infer more: every DDR consequence is a GCWA
    consequence, every GCWA consequence an EGCWA consequence."""
    from repro.sat.solver import entails_classically

    ddr = get_semantics("ddr")
    gcwa = get_semantics("gcwa")
    pws = get_semantics("pws")
    egcwa = get_semantics("egcwa")
    if entails_classically(db, query):
        assert ddr.infers(db, query)
    if ddr.infers(db, query):
        assert gcwa.infers(db, query)
        assert pws.infers(db, query)
    if gcwa.infers(db, query):
        assert egcwa.infers(db, query)
    if pws.infers(db, query):
        assert egcwa.infers(db, query)


def test_gcwa_and_pws_are_incomparable():
    """The two witnesses from the docstring, verified."""
    from repro.logic.parser import parse_database

    db1 = parse_database("a. a | b.")
    assert frozenset({"a", "b"}) in _models(db1, "pws")
    assert frozenset({"a", "b"}) not in _models(db1, "gcwa")

    db2 = parse_database("a | b. c :- a.")
    assert frozenset({"b", "c"}) in _models(db2, "gcwa")
    assert frozenset({"b", "c"}) not in _models(db2, "pws")


@given(positive_databases(max_clauses=4))
def test_negative_literal_strength(db):
    """On the closure view: WGCWA/DDR negates a subset of what GCWA
    negates (the 'weak' in Weak GCWA)."""
    ddr_negated = get_semantics("ddr").negated_atoms(db)
    from repro.semantics.gcwa import free_for_negation

    assert ddr_negated <= free_for_negation(db)


@given(positive_databases(max_clauses=4))
def test_all_minimal_model_semantics_coincide_on_positive(db):
    """EGCWA, ECWA (full P), CIRC, PERF, ICWA, DSM all select MM(DB) on
    positive databases — six implementations, one answer."""
    reference = _models(db, "egcwa")
    for name in ("ecwa", "circ", "perf", "icwa", "dsm"):
        assert _models(db, name) == reference, name


@given(positive_databases(max_clauses=3))
def test_total_pdsm_also_coincides_on_positive(db):
    reference = _models(db, "egcwa")
    pdsm_total = {
        frozenset(m.to_total())
        for m in get_semantics("pdsm").model_set(db)
        if m.is_total
    }
    assert pdsm_total == reference


@given(positive_databases(max_clauses=4), queries)
def test_brave_cautious_duality(db, query):
    """Cautious inference of F fails iff brave inference of ¬F succeeds
    (whenever the selected model set is nonempty)."""
    from repro.logic.formula import Not

    egcwa = get_semantics("egcwa")
    cautious = egcwa.infers(db, query)
    brave_negation = egcwa.infers_brave(db, Not(query))
    assert cautious == (not brave_negation)
