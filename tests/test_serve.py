"""Concurrency-hardened tests for the serving layer (:mod:`repro.serve`).

Four angles, mirroring the serve design:

* **protocol + endpoints** — request/response framing, routing, error
  mapping, the ``/metrics`` and ``/trace`` endpoints, the background
  daemon + sync client pair the CI smoke drives;
* **differential under concurrency** — N async clients hammer the
  daemon across the four seeded regimes; every served answer must equal
  the single-threaded ``cached`` oracle, and the service / cache / pool
  counters must be internally consistent afterwards (admitted ==
  completed, hits + misses == lookups, no lost checkouts);
* **QoS + fault injection** — per-request budget headers map to
  structured 429/503 responses, seeded
  :class:`~repro.runtime.faults.FaultPlan`\\ s produce 503s without
  poisoning sessions, and one tenant's faults never corrupt another
  tenant's answers;
* **batching discipline** — same ``(tenant, db, semantics)`` coalesces
  (asserted via the batch-width metric *and* a scripted spy on the batch
  runner), different tenants or semantics never share a batch even for
  byte-identical database texts.

The 64-client soak (>= 500 queries, zero divergences, zero certifier
violations) runs in the slow lane.
"""

from __future__ import annotations

import asyncio
import threading
import uuid

import pytest

from repro.logic.parser import parse_database
from repro.obs.metrics import METRICS
from repro.runtime.budget import Budget
from repro.runtime.faults import FaultPlan
from repro.serve import (
    AsyncServeClient,
    BackgroundServer,
    QueryService,
    ReproServer,
    ServeClient,
    canonical_db_id,
)
from repro.session import DatabaseSession
from repro.workloads import (
    random_deductive_db,
    random_normal_db,
    random_positive_db,
    random_query_formula,
    random_stratified_db,
)

# ----------------------------------------------------------------------
# Harness helpers
# ----------------------------------------------------------------------

#: The four seeded regimes of the differential harness (small sizes so
#: the concurrency sweeps stay quick).
REGIMES = ("positive", "deductive", "stratified", "normal")

#: Semantics exercised per regime (subset of the differential lists;
#: enough to cover coNP, Pi2p and stable-model rows).
SEMANTICS_FOR = {
    "positive": ["gcwa", "egcwa", "dsm"],
    "deductive": ["gcwa", "egcwa", "dsm"],
    "stratified": ["gcwa", "egcwa", "circ"],
    "normal": ["gcwa", "egcwa", "dsm"],
}


def build_db(regime: str, seed: int):
    if regime == "positive":
        return random_positive_db(4, 4, seed=seed)
    if regime == "deductive":
        return random_deductive_db(4, 5, seed=seed)
    if regime == "stratified":
        return random_stratified_db(4, 5, seed=seed)
    if regime == "normal":
        return random_normal_db(4, 5, ic_fraction=0.15, seed=seed)
    raise ValueError(regime)


def unique_db_text(template: str = "{a} | {b}. {c} :- {a}.") -> str:
    """A database text whose atoms are globally unique, so the
    process-wide answer cache cannot satisfy this test's queries from a
    previous test's work (budget-trip tests need real SAT calls)."""
    tag = uuid.uuid4().hex[:8]
    return template.format(a=f"a{tag}", b=f"b{tag}", c=f"c{tag}")


def expected_answers(db, semantics: str, queries):
    """Ground truth from a single-threaded cached-engine session."""
    session = DatabaseSession(db, engine="cached")
    expected = {}
    for task, query in queries:
        if task == "has_model":
            expected[(task, query)] = session.has_model(semantics)
        elif task == "model_set":
            expected[(task, query)] = sorted(
                sorted(model) for model in session.models(semantics)
            )
        elif task == "infers_literal":
            expected[(task, query)] = session.ask_literal(
                query, semantics
            ).verdict
        else:
            expected[(task, query)] = session.ask(
                query, semantics=semantics
            ).verdict
    return expected


def query_mix(db, seed: int):
    """The per-database task mix the concurrency sweeps issue."""
    atoms = sorted(db.vocabulary)
    formula = random_query_formula(atoms, depth=2, seed=seed)
    atom = atoms[0]
    return [
        ("infers", str(formula)),
        ("infers_literal", atom),
        ("infers_literal", f"~{atom}"),
        ("has_model", None),
        ("model_set", None),
    ]


# ----------------------------------------------------------------------
# Protocol + endpoints
# ----------------------------------------------------------------------

def test_roundtrip_endpoints():
    async def main():
        service = QueryService(engine="cached", workers=2)
        async with ReproServer(service, tracing=True) as server:
            async with AsyncServeClient(
                "127.0.0.1", server.port, tenant="t1"
            ) as client:
                health = await client.healthz()
                assert health.status == 200
                assert health.payload == {"status": "ok"}

                registered = await client.register("a | b. c :- a. c :- b.")
                assert registered.status == 200
                db_id = registered.payload["db"]
                assert registered.payload["atoms"] == 3

                # Registration is idempotent and content-addressed.
                again = await client.register("a | b. c :- a. c :- b.")
                assert again.payload["db"] == db_id

                listed = await client.request("GET", "/v1/databases")
                assert [d["db"] for d in listed.payload["databases"]] == [
                    db_id
                ]

                answer = await client.query(
                    db_id, task="infers", semantics="egcwa", query="c"
                )
                assert answer.status == 200
                assert answer.payload["verdict"] is True
                assert answer.payload["tenant"] == "t1"
                assert answer.payload["batch_width"] >= 1
                assert answer.payload["complexity_ok"] is True

                neg = await client.query(
                    db_id, task="infers", semantics="egcwa", query="a"
                )
                assert neg.payload["verdict"] is False
                assert "counter_model" in neg.payload

                models = await client.query(
                    db_id, task="model_set", semantics="gcwa"
                )
                assert models.payload["models"] == [
                    ["a", "b", "c"], ["a", "c"], ["b", "c"],
                ]

                stats = await client.stats()
                assert stats.payload["requests"] == stats.payload["admitted"]
                assert stats.payload["tenants"]["t1"]["queries"] == 3

                metrics = await client.metrics()
                assert metrics.status == 200
                assert "repro_serve_requests_total" in metrics.payload
                assert "repro_serve_queue_depth" in metrics.payload

                trace = await client.request("GET", "/trace")
                assert trace.status == 200
                assert trace.payload.strip()  # spans drained as JSONL
                drained = await client.request("GET", "/trace")
                assert drained.payload.strip() == ""

    asyncio.run(main())


def test_error_mapping():
    async def main():
        service = QueryService(engine="cached", workers=1)
        async with ReproServer(service) as server:
            async with AsyncServeClient(
                "127.0.0.1", server.port
            ) as client:
                missing = await client.request("GET", "/nope")
                assert missing.status == 404
                assert missing.payload["error"] == "not_found"

                bad_method = await client.request("PUT", "/v1/databases")
                assert bad_method.status == 405

                bad_json = await client.request(
                    "POST", "/v1/databases", {"nothing": 1}
                )
                assert bad_json.status == 400

                bad_db = await client.request(
                    "POST", "/v1/databases", {"text": "a |||"}
                )
                assert bad_db.status == 400
                assert bad_db.payload["error"] == "bad_database"

                unknown_db = await client.query(
                    "feedfeedfeedfeed", task="has_model"
                )
                assert unknown_db.status == 404
                assert unknown_db.payload["error"] == "unknown_database"

                registered = await client.register("a | b.")
                db_id = registered.payload["db"]
                bad_task = await client.query(db_id, task="enumerate")
                assert bad_task.status == 400
                bad_semantics = await client.query(
                    db_id, task="has_model", semantics="nonsense"
                )
                assert bad_semantics.status == 400
                no_query = await client.query(db_id, task="infers")
                assert no_query.status == 400
                bad_budget = await client.request(
                    "POST", "/v1/query",
                    {"db": db_id, "task": "has_model"},
                    headers={"X-Budget-Wall-Ms": "soon"},
                )
                assert bad_budget.status == 400
                assert bad_budget.payload["error"] == "bad_budget"

                # Counter discipline: an unknown-database refusal is a
                # rejection, so the stats invariant holds even with 404s
                # in the mix (requests == admitted + rejected).
                stats = (await client.request("GET", "/v1/stats")).payload
                assert stats["rejected"] >= 1
                assert (
                    stats["requests"]
                    == stats["admitted"] + stats["rejected"]
                )
                assert stats["admitted"] == stats["completed"]

    asyncio.run(main())


def test_inline_database_and_tenant_namespaces():
    """Inline texts register under their content id; equal texts from
    different tenants live in separate namespaces (and sessions)."""

    async def main():
        service = QueryService(engine="cached", workers=2)
        text = "p | q. r :- p. r :- q."
        db_id = canonical_db_id(parse_database(text))
        async with ReproServer(service) as server:
            a = AsyncServeClient("127.0.0.1", server.port, tenant="alpha")
            b = AsyncServeClient("127.0.0.1", server.port, tenant="beta")
            async with a, b:
                first = await a.request(
                    "POST", "/v1/query",
                    {"database": text, "task": "infers", "query": "r",
                     "semantics": "egcwa"},
                )
                assert first.status == 200
                assert first.payload["db"] == db_id
                # beta has not registered anything: the id is unknown
                # in *its* namespace.
                other = await b.query(db_id, task="has_model")
                assert other.status == 404
                # After beta registers the same text it gets the same
                # content id but its own session/tenant counters.
                registered = await b.register(text)
                assert registered.payload["db"] == db_id
                second = await b.query(
                    db_id, task="infers", semantics="egcwa", query="r"
                )
                assert second.status == 200
        stats = service.stats()
        assert stats["tenants"]["alpha"]["sessions"] == 1
        assert stats["tenants"]["beta"]["sessions"] == 1

    asyncio.run(main())


def test_background_server_and_sync_client():
    """The daemon-on-a-thread + stdlib-http.client pair (the CI smoke
    path): start, register, query, scrape /metrics, clean shutdown."""
    service = QueryService(engine="cached", workers=2)
    with BackgroundServer(service) as handle:
        with ServeClient("127.0.0.1", handle.port, tenant="ops") as client:
            assert client.healthz().payload == {"status": "ok"}
            db_id = client.register("a | b. c :- a. c :- b.").payload["db"]
            answer = client.query(
                db=db_id, task="infers", semantics="egcwa", query="c"
            )
            assert answer.status == 200 and answer.payload["verdict"]
            scrape = client.metrics()
            assert "repro_serve_responses_total" in scrape.payload
            stats = client.stats()
            assert stats.payload["tenants"]["ops"]["queries"] == 1
    # Clean shutdown: the worker pool is drained and closed.
    assert service._executor._shutdown


# ----------------------------------------------------------------------
# QoS budgets
# ----------------------------------------------------------------------

def test_budget_headers_map_to_structured_errors():
    async def main():
        service = QueryService(engine="cached", workers=1)
        text = unique_db_text()
        async with ReproServer(service) as server:
            async with AsyncServeClient(
                "127.0.0.1", server.port
            ) as client:
                db_id = (await client.register(text)).payload["db"]
                atom = sorted(parse_database(text).vocabulary)[0]

                # SAT-call ceiling -> 429 "budget" with usage detail.
                capped = await client.query(
                    db_id, task="infers", semantics="egcwa",
                    query=f"~{atom}", budget=Budget(max_sat_calls=0),
                )
                assert capped.status == 429
                assert capped.payload["error"] == "budget"
                assert capped.payload["usage"]["resource"] == "sat_calls"
                assert "retry-after" in capped.headers

                # Wall-clock ceiling -> 503 "timeout" with Retry-After.
                timed = await client.query(
                    db_id, task="infers", semantics="egcwa",
                    query=f"~{atom}", budget=Budget(wall_ms=0.0),
                )
                assert timed.status == 503
                assert timed.payload["error"] == "timeout"
                assert "retry-after" in timed.headers

                # The tripped budget did not poison the session: the
                # same query, unbudgeted, answers and matches oracle.
                ok = await client.query(
                    db_id, task="infers", semantics="egcwa",
                    query=f"~{atom}",
                )
                assert ok.status == 200
                oracle = DatabaseSession(
                    parse_database(text), engine="cached"
                )
                assert ok.payload["verdict"] == oracle.ask(
                    f"~{atom}", semantics="egcwa"
                ).verdict

    asyncio.run(main())


def test_service_default_budget_applies_without_headers():
    async def main():
        service = QueryService(
            engine="cached", workers=1,
            default_budget=Budget(max_sat_calls=0),
        )
        text = unique_db_text()
        async with ReproServer(service) as server:
            async with AsyncServeClient(
                "127.0.0.1", server.port
            ) as client:
                db_id = (await client.register(text)).payload["db"]
                atom = sorted(parse_database(text).vocabulary)[0]
                capped = await client.query(
                    db_id, task="infers", semantics="egcwa",
                    query=f"~{atom}",
                )
                assert capped.status == 429
                assert capped.payload["error"] == "budget"

    asyncio.run(main())


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------

def test_admission_bound_rejects_with_429():
    """With max_queue=1 and the only worker blocked, a second query from
    the same tenant is refused at admission; another tenant's queue is
    unaffected."""
    gate = threading.Event()

    def hook(key, width):
        gate.wait(30)

    async def main():
        service = QueryService(
            engine="cached", workers=1, max_queue=1, batch_hook=hook
        )
        text = "a | b. c :- a."
        async with ReproServer(service) as server:
            blocked = AsyncServeClient(
                "127.0.0.1", server.port, tenant="busy"
            )
            second = AsyncServeClient(
                "127.0.0.1", server.port, tenant="busy"
            )
            other = AsyncServeClient(
                "127.0.0.1", server.port, tenant="calm"
            )
            async with blocked, second, other:
                db_id = (await blocked.register(text)).payload["db"]
                await other.register(text)
                first = asyncio.ensure_future(
                    blocked.query(db_id, task="has_model")
                )
                # Wait until the first query is admitted and running.
                for _ in range(200):
                    if service.tenant("busy").pending == 1:
                        break
                    await asyncio.sleep(0.01)
                assert service.tenant("busy").pending == 1

                reject = await second.query(db_id, task="has_model")
                assert reject.status == 429
                assert reject.payload["error"] == "admission"
                assert "retry-after" in reject.headers

                gate.set()
                done = await first
                assert done.status == 200

                # The other tenant was never near its bound.
                calm = await other.query(db_id, task="has_model")
                assert calm.status == 200
        stats = service.stats()
        assert stats["rejected"] == 1
        assert stats["tenants"]["busy"]["rejects"] == 1
        assert stats["tenants"]["calm"]["rejects"] == 0
        assert stats["admitted"] == stats["completed"]

    asyncio.run(main())


# ----------------------------------------------------------------------
# Fault injection through the server path
# ----------------------------------------------------------------------

def test_fault_injection_transient_503_without_poisoning():
    """A seeded fault plan makes the first SAT-bearing queries fail with
    a structured 503; once the plan's fault cap is consumed the same
    session answers correctly — no poisoned cache, no broken session."""

    async def main():
        plan = FaultPlan(seed=7, sat_fault_rate=1.0, max_sat_faults=2)
        service = QueryService(
            engine="cached", workers=1, fault_plans={"default": plan}
        )
        text = unique_db_text()
        db = parse_database(text)
        atom = sorted(db.vocabulary)[0]
        async with ReproServer(service) as server:
            async with AsyncServeClient(
                "127.0.0.1", server.port
            ) as client:
                db_id = (await client.register(text)).payload["db"]
                failures = 0
                verdicts = []
                for _ in range(4):
                    response = await client.query(
                        db_id, task="infers", semantics="egcwa",
                        query=f"~{atom}",
                    )
                    if response.status == 503:
                        assert response.payload["error"] == "transient"
                        assert "retry-after" in response.headers
                        failures += 1
                    else:
                        assert response.status == 200
                        verdicts.append(response.payload["verdict"])
        assert failures >= 1  # the plan did bite
        assert plan.sat_faults == 2  # and was capped as seeded
        assert verdicts  # recovered answers exist...
        oracle = DatabaseSession(db, engine="oracle")
        expected = oracle.ask(f"~{atom}", semantics="egcwa").verdict
        assert all(v == expected for v in verdicts)  # ...and are exact

    asyncio.run(main())


def test_resilient_engine_degrades_instead_of_failing():
    """engine="resilient": an uncapped 100% SAT fault rate exhausts the
    retries and the brute fallback (no SAT surface) still answers 200."""

    async def main():
        plan = FaultPlan(seed=3, sat_fault_rate=1.0)
        service = QueryService(
            engine="resilient", workers=1,
            fault_plans={"default": plan},
        )
        text = unique_db_text()
        db = parse_database(text)
        atom = sorted(db.vocabulary)[0]
        async with ReproServer(service) as server:
            async with AsyncServeClient(
                "127.0.0.1", server.port
            ) as client:
                db_id = (await client.register(text)).payload["db"]
                response = await client.query(
                    db_id, task="infers", semantics="egcwa",
                    query=f"~{atom}",
                )
                assert response.status == 200
        assert plan.sat_faults > 0
        oracle = DatabaseSession(db, engine="brute")
        assert response.payload["verdict"] == oracle.ask(
            f"~{atom}", semantics="egcwa"
        ).verdict

    asyncio.run(main())


def test_tenant_fault_isolation():
    """Tenant A runs under a hostile fault plan; tenant B (same database
    text!) must see exact answers throughout — a tenant's failures never
    corrupt another tenant's results."""

    async def main():
        plan = FaultPlan(seed=11, sat_fault_rate=1.0)
        service = QueryService(
            engine="cached", workers=2, fault_plans={"hostile": plan}
        )
        text = unique_db_text()
        db = parse_database(text)
        atom = sorted(db.vocabulary)[0]
        oracle = DatabaseSession(db, engine="oracle")
        expected = oracle.ask(f"~{atom}", semantics="egcwa").verdict
        async with ReproServer(service) as server:
            hostile = AsyncServeClient(
                "127.0.0.1", server.port, tenant="hostile"
            )
            calm = AsyncServeClient(
                "127.0.0.1", server.port, tenant="calm"
            )
            async with hostile, calm:
                db_id = (await hostile.register(text)).payload["db"]
                await calm.register(text)
                saw_fault = False
                for _ in range(3):
                    bad = await hostile.query(
                        db_id, task="infers", semantics="egcwa",
                        query=f"~{atom}",
                    )
                    saw_fault = saw_fault or bad.status == 503
                    good = await calm.query(
                        db_id, task="infers", semantics="egcwa",
                        query=f"~{atom}",
                    )
                    assert good.status == 200
                    assert good.payload["verdict"] == expected
        assert saw_fault
        stats = service.stats()
        assert stats["tenants"]["calm"]["errors"] == 0
        assert stats["tenants"]["calm"]["certificate_violations"] == 0

    asyncio.run(main())


# ----------------------------------------------------------------------
# Batching discipline
# ----------------------------------------------------------------------

def test_same_key_coalesces_into_one_batch():
    """While the first batch blocks in the worker, three more queries
    for the same (tenant, db, semantics) arrive; they must run as ONE
    batch of width 3 — observed by the scripted spy and the batch-width
    metric."""
    release = threading.Event()
    widths = []

    def hook(key, width):
        widths.append((key, width))
        if not release.is_set():
            release.wait(30)

    async def main():
        service = QueryService(engine="cached", workers=2, batch_hook=hook)
        text = "a | b. c :- a. c :- b."
        metric = METRICS.get("repro_serve_batch_width")
        count_before = metric.count
        sum_before = metric.sum
        async with ReproServer(service) as server:
            async with AsyncServeClient(
                "127.0.0.1", server.port
            ) as client:
                db_id = (await client.register(text)).payload["db"]
                others = [
                    AsyncServeClient("127.0.0.1", server.port)
                    for _ in range(3)
                ]
                for other in others:
                    await other.connect()
                try:
                    leader = asyncio.ensure_future(
                        client.query(
                            db_id, task="infers", semantics="egcwa",
                            query="c",
                        )
                    )
                    # Wait for the leader's batch to be in the worker.
                    for _ in range(300):
                        if widths:
                            break
                        await asyncio.sleep(0.01)
                    assert widths and widths[0][1] == 1
                    followers = [
                        asyncio.ensure_future(
                            other.query(
                                db_id, task="infers",
                                semantics="egcwa", query="c",
                            )
                        )
                        for other in others
                    ]
                    # Wait until all three are queued on the key.
                    for _ in range(300):
                        if service.tenant("default").pending == 4:
                            break
                        await asyncio.sleep(0.01)
                    release.set()
                    responses = [await leader] + [
                        await follower for follower in followers
                    ]
                finally:
                    for other in others:
                        await other.close()
        assert all(r.status == 200 for r in responses)
        assert all(r.payload["verdict"] is True for r in responses)
        recorded = [width for _, width in widths]
        assert recorded == [1, 3]  # leader alone, then the coalesced 3
        assert responses[1].payload["batch_width"] == 3
        assert service.batches == 2
        assert service.batched_items == 4
        metric_after = METRICS.get("repro_serve_batch_width")
        assert metric_after.count - count_before == 2
        assert metric_after.sum - sum_before == 4.0

    asyncio.run(main())


def test_batch_key_discipline_across_tenants_and_semantics():
    """Byte-identical database texts under two tenants and two semantics
    = four distinct batch keys; no executed batch may ever mix them."""
    recorded = []
    original = QueryService._run_batch

    def spying_run_batch(self, key, session, items):
        recorded.append(
            (key, [(i.tenant, i.db_id, i.semantics) for i in items])
        )
        return original(self, key, session, items)

    async def main():
        service = QueryService(engine="cached", workers=4)
        service._run_batch = spying_run_batch.__get__(service)
        text = "p | q. r :- p. r :- q."
        async with ReproServer(service) as server:
            # One connection per in-flight request, so all 12 queries
            # genuinely overlap on the server side.
            clients = [
                AsyncServeClient("127.0.0.1", server.port, tenant=tenant)
                for tenant in ("one", "two")
                for _semantics in ("gcwa", "egcwa")
                for _copy in range(3)
            ]
            for client in clients:
                await client.connect()
            try:
                for tenant in ("one", "two"):
                    register = AsyncServeClient(
                        "127.0.0.1", server.port, tenant=tenant
                    )
                    async with register:
                        await register.register(text)
                db_id = canonical_db_id(parse_database(text))
                jobs = []
                index = 0
                for tenant in ("one", "two"):
                    for semantics in ("gcwa", "egcwa"):
                        for _ in range(3):
                            jobs.append(
                                clients[index].query(
                                    db_id, task="infers",
                                    semantics=semantics, query="r",
                                )
                            )
                            index += 1
                responses = await asyncio.gather(*jobs)
            finally:
                for client in clients:
                    await client.close()
        assert all(r.status == 200 for r in responses)
        assert sum(len(items) for _, items in recorded) == 12
        seen_keys = set()
        for key, items in recorded:
            seen_keys.add((key.tenant, key.semantics))
            for tenant, db, semantics in items:
                # Every item matches its batch's key exactly: batches
                # never span tenants or semantics.
                assert tenant == key.tenant
                assert db == key.db_id
                assert semantics == key.semantics
        assert seen_keys == {
            ("one", "gcwa"), ("one", "egcwa"),
            ("two", "gcwa"), ("two", "egcwa"),
        }

    asyncio.run(main())


# ----------------------------------------------------------------------
# Concurrency differential vs the cached oracle
# ----------------------------------------------------------------------

def _run_differential(clients: int, seeds_per_regime: int):
    """N concurrent clients sweep the regimes; every answer must match
    the single-threaded cached oracle and the counters must reconcile."""
    cases = []  # (tenant, text, vocab, db_id, semantics, task, query, want)
    for regime in REGIMES:
        for seed in range(seeds_per_regime):
            db = build_db(regime, seed)
            text = str(db)
            vocab = sorted(db.vocabulary)
            db_id = canonical_db_id(db)
            queries = query_mix(db, seed=seed)
            for semantics in SEMANTICS_FOR[regime]:
                expected = expected_answers(db, semantics, queries)
                for task, query in queries:
                    cases.append((
                        f"tenant-{seed % 3}", text, vocab, db_id,
                        semantics, task, query, expected[(task, query)],
                    ))

    divergences = []

    async def worker(server_port, worker_index, assigned):
        client = AsyncServeClient(
            "127.0.0.1", server_port,
            tenant=assigned[0][0] if assigned else "default",
        )
        await client.connect()
        try:
            registered = set()
            for (tenant, text, vocab, db_id, semantics, task, query,
                 expected) in assigned:
                client.tenant = tenant
                if (tenant, db_id) not in registered:
                    response = await client.register(text, vocabulary=vocab)
                    assert response.status == 200
                    assert response.payload["db"] == db_id
                    registered.add((tenant, db_id))
                response = await client.query(
                    db_id, task=task, semantics=semantics, query=query
                )
                if response.status != 200:
                    divergences.append(
                        (tenant, semantics, task, query, response.payload)
                    )
                    continue
                got = (
                    response.payload["models"]
                    if task == "model_set"
                    else response.payload["verdict"]
                )
                if got != expected:
                    divergences.append(
                        (tenant, semantics, task, query, got, expected)
                    )
        finally:
            await client.close()

    async def main():
        service = QueryService(engine="cached", workers=4, max_queue=512)
        async with ReproServer(service) as server:
            tasks = [
                worker(server.port, index, cases[index::clients])
                for index in range(clients)
            ]
            await asyncio.gather(*tasks)
        return service

    service = asyncio.run(main())
    assert divergences == [], divergences[:5]

    # Post-run counter consistency: nothing lost, nothing double-counted.
    stats = service.stats()
    assert stats["requests"] == stats["admitted"] + stats["rejected"]
    assert stats["admitted"] == stats["completed"]
    assert stats["in_flight"] == 0
    # Every admitted item ran in exactly one batch: nothing lost on the
    # queue, nothing evaluated twice.
    assert stats["batched_items"] == stats["admitted"]
    assert stats["admitted"] == sum(
        tenant["queries"] for tenant in stats["tenants"].values()
    )
    cache = stats["cache"]
    assert cache["hits"] + cache["misses"] >= cache["entries"]
    assert 0.0 <= cache["hit_rate"] <= 1.0
    pool = stats["solver_pool"]
    checkouts = pool["solvers_created"] + pool["solver_reuses"]
    assert pool["solvers_pooled"] <= pool["pool_maxsize"]
    assert checkouts >= pool["solvers_pooled"]  # parked ⊆ ever checked out
    violations = sum(
        tenant["certificate_violations"]
        for tenant in stats["tenants"].values()
    )
    assert violations == 0
    return stats


def test_concurrent_clients_match_cached_oracle():
    _run_differential(clients=8, seeds_per_regime=2)


@pytest.mark.slow
def test_soak_64_clients_differential():
    """The acceptance soak: 64 concurrent clients, >= 500 served
    queries, zero divergences from the cached oracle, zero certifier
    violations, consistent counters afterwards."""
    stats = _run_differential(clients=64, seeds_per_regime=9)
    assert stats["admitted"] >= 500
