"""Tests for DatabaseSession and JSON serialization."""

import json

import pytest
from hypothesis import given

from repro.logic.parser import parse_database, parse_formula
from repro.logic.serialize import (
    clause_from_dict,
    clause_to_dict,
    database_from_dict,
    database_to_dict,
    formula_from_dict,
    formula_to_dict,
)
from repro.session import DatabaseSession

from conftest import databases
from test_formula import formulas


class TestSession:
    def test_basic_ask(self, simple_db):
        session = DatabaseSession(simple_db)
        assert session.ask("~a | ~b")
        assert not session.ask("~a | ~b", semantics="gcwa")

    def test_answer_carries_accounting(self, simple_db):
        session = DatabaseSession(simple_db)
        answer = session.ask("a | b")
        assert answer.verdict and answer.sat_calls >= 1
        assert "EGCWA" in answer.render()

    def test_certificate_on_negative_answer(self, simple_db):
        session = DatabaseSession(simple_db)
        answer = session.ask("c")
        assert not answer
        assert answer.certificate is not None
        assert answer.certificate.check(simple_db)
        assert "counter-model" in answer.render()

    def test_certificates_can_be_disabled(self, simple_db):
        session = DatabaseSession(simple_db, certificates=False)
        assert session.ask("c").certificate is None

    def test_brave_mode(self, simple_db):
        session = DatabaseSession(simple_db)
        assert session.ask("c", mode="brave")
        assert not session.ask("b & c", mode="brave")

    def test_unknown_mode_rejected(self, simple_db):
        with pytest.raises(ValueError):
            DatabaseSession(simple_db).ask("a", mode="optimistic")

    def test_ask_literal(self, simple_db):
        session = DatabaseSession(simple_db, default_semantics="gcwa")
        assert not session.ask_literal("not c")
        assert session.ask_literal("not c", semantics="egcwa") is not None

    def test_models_and_existence(self, simple_db):
        session = DatabaseSession(simple_db)
        assert len(session.models()) == 2
        assert session.has_model("dsm")

    def test_stats_accumulate(self, simple_db):
        session = DatabaseSession(simple_db)
        session.ask("a")
        session.ask("b", semantics="dsm")
        stats = session.stats()
        assert stats["queries_answered"] == 2
        assert stats["semantics_cached"] == 2
        assert stats["total_sat_calls"] >= 2
        assert stats["certificates_checked"] == 2
        assert stats["certificate_violations"] == 0

    def test_extended_session_is_new(self, simple_db):
        from repro.logic.clause import Clause

        session = DatabaseSession(simple_db)
        extended = session.extended([Clause.integrity(["b"])])
        assert extended.ask_literal("a")          # b now impossible
        assert not session.ask_literal("a")       # original untouched

    def test_alias_resolution(self, simple_db):
        session = DatabaseSession(simple_db, default_semantics="stable")
        assert session.default_semantics == "dsm"


class TestClauseSerialization:
    def test_round_trip(self):
        from repro.logic.clause import Clause

        clause = Clause.rule(["a", "b"], ["c"], ["d"])
        assert clause_from_dict(clause_to_dict(clause)) == clause

    def test_json_compatible(self, simple_db):
        payload = json.dumps(database_to_dict(simple_db))
        assert database_from_dict(json.loads(payload)) == simple_db

    @given(databases())
    def test_database_round_trip(self, db):
        assert database_from_dict(database_to_dict(db)) == db

    def test_vocabulary_preserved(self):
        db = parse_database("a.").with_vocabulary(["z"])
        assert database_from_dict(database_to_dict(db)).vocabulary == {
            "a", "z"
        }


class TestFormulaSerialization:
    @given(formulas())
    def test_round_trip(self, formula):
        assert formula_from_dict(formula_to_dict(formula)) == formula

    def test_json_compatible(self):
        formula = parse_formula("(a & ~b) -> (c <-> true)")
        payload = json.dumps(formula_to_dict(formula))
        assert formula_from_dict(json.loads(payload)) == formula

    def test_bad_tag_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            formula_from_dict({"op": "xor", "args": []})

    def test_bad_var_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            formula_from_dict({"op": "var"})

    def test_binary_arity_enforced(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            formula_from_dict({"op": "implies", "args": [{"op": "true"}]})
