"""Tests for CNF preprocessing (repro.sat.simplify)."""

import itertools

from hypothesis import given
from hypothesis import strategies as st

from repro.logic.atoms import Literal
from repro.sat.simplify import (
    eliminate_pure_literals,
    pure_literals,
    remove_subsumed,
    self_subsume,
    simplify_cnf,
    unit_propagate,
)

ATOMS = ["a", "b", "c", "d"]


def _lit(atom, sign=True):
    return Literal(atom, sign)


def _cnf_evaluate(cnf, model):
    return all(
        any((l.atom in model) == l.positive for l in clause)
        for clause in cnf
    )


@st.composite
def cnfs(draw):
    count = draw(st.integers(0, 8))
    cnf = []
    for _ in range(count):
        size = draw(st.integers(1, 3))
        atoms = draw(
            st.lists(st.sampled_from(ATOMS), min_size=size, max_size=size,
                     unique=True)
        )
        signs = draw(st.lists(st.booleans(), min_size=size, max_size=size))
        cnf.append(frozenset(Literal(a, s) for a, s in zip(atoms, signs)))
    return cnf


class TestUnitPropagation:
    def test_forces_units(self):
        cnf = [frozenset({_lit("a")}), frozenset({_lit("a", False),
                                                  _lit("b")})]
        residual, forced, unsat = unit_propagate(cnf)
        assert not unsat
        assert forced == {_lit("a"), _lit("b")}
        assert residual == []

    def test_detects_contradiction(self):
        cnf = [frozenset({_lit("a")}), frozenset({_lit("a", False)})]
        _residual, _forced, unsat = unit_propagate(cnf)
        assert unsat

    def test_empty_clause_from_shrinking(self):
        cnf = [
            frozenset({_lit("a")}),
            frozenset({_lit("b")}),
            frozenset({_lit("a", False), _lit("b", False)}),
        ]
        _residual, _forced, unsat = unit_propagate(cnf)
        assert unsat

    @given(cnfs())
    def test_preserves_models(self, cnf):
        residual, forced, unsat = unit_propagate(cnf)
        for bits in itertools.product([False, True], repeat=len(ATOMS)):
            model = {a for a, bit in zip(ATOMS, bits) if bit}
            original = _cnf_evaluate(cnf, model)
            forced_ok = all(
                (l.atom in model) == l.positive for l in forced
            )
            simplified = (not unsat) and forced_ok and _cnf_evaluate(
                residual, model
            )
            assert original == simplified


class TestPureLiterals:
    def test_detection(self):
        cnf = [frozenset({_lit("a"), _lit("b", False)}),
               frozenset({_lit("a"), _lit("b")})]
        assert pure_literals(cnf) == {_lit("a")}

    def test_elimination_preserves_satisfiability(self):
        cnf = [frozenset({_lit("a"), _lit("b")}),
               frozenset({_lit("a"), _lit("c", False)})]
        residual, chosen = eliminate_pure_literals(cnf)
        assert residual == []
        assert _lit("a") in chosen


class TestSubsumption:
    def test_removes_supersets(self):
        small = frozenset({_lit("a")})
        big = frozenset({_lit("a"), _lit("b")})
        assert remove_subsumed([big, small]) == [small]

    def test_self_subsumption_strengthens(self):
        # (a | b) and (a | ~b) -> (a) via self-subsuming resolution.
        cnf = [frozenset({_lit("a"), _lit("b")}),
               frozenset({_lit("a"), _lit("b", False)})]
        strengthened = self_subsume(cnf)
        assert frozenset({_lit("a")}) in strengthened

    @given(cnfs())
    def test_self_subsume_preserves_models(self, cnf):
        strengthened = self_subsume(cnf)
        for bits in itertools.product([False, True], repeat=len(ATOMS)):
            model = {a for a, bit in zip(ATOMS, bits) if bit}
            assert _cnf_evaluate(cnf, model) == _cnf_evaluate(
                strengthened, model
            )


class TestPipeline:
    @given(cnfs())
    def test_equisatisfiable(self, cnf):
        from repro.sat.solver import is_satisfiable

        result = simplify_cnf(cnf)
        if result.unsatisfiable:
            assert not is_satisfiable(cnf)
        else:
            assert is_satisfiable(cnf) == is_satisfiable(
                list(result.cnf) + [frozenset({l}) for l in result.fixed]
            )

    @given(cnfs())
    def test_model_preserving_without_pure_literals(self, cnf):
        result = simplify_cnf(cnf, use_pure_literals=False)
        for bits in itertools.product([False, True], repeat=len(ATOMS)):
            model = {a for a, bit in zip(ATOMS, bits) if bit}
            original = _cnf_evaluate(cnf, model)
            fixed_ok = all(
                (l.atom in model) == l.positive for l in result.fixed
            )
            simplified = (
                not result.unsatisfiable
                and fixed_ok
                and _cnf_evaluate(result.cnf, model)
            )
            assert original == simplified

    def test_reduction_instances_shrink(self):
        from repro.logic.cnf import database_to_cnf
        from repro.complexity.reductions import qbf_to_minimal_entailment
        from repro.workloads import random_qbf2

        instance = qbf_to_minimal_entailment(random_qbf2(2, 2, seed=0))
        cnf = database_to_cnf(instance.db)
        result = simplify_cnf(cnf)
        assert len(result.cnf) <= len(cnf)
