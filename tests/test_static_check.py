"""Tests for the whole-program static certifier (``repro-ddb check``).

Covers the call-graph builder (cycles, decorated defs, relative
imports, late-bound ``self`` dispatch, brute-branch pruning, dynamic
``getattr`` conservatism-as-warning — including hypothesis-generated
module graphs checked against a reference reachability), Pass 1's
certify-derived Σ₂ᵖ allowances and fallback-edge annotations, Pass 2's
race rules against the seeded known-bad fixtures in
``tests/data/static_injections/``, the shared baseline/diff machinery,
and the CLI surface.
"""

from __future__ import annotations

import subprocess
import textwrap
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import baseline as baseline_mod
from repro.analysis.lint import lint_paths
from repro.analysis.lint import main as lint_main
from repro.analysis.static import checker, complexity
from repro.analysis.static.callgraph import CallGraph
from repro.cli import main as cli_main

FIXTURES = Path(__file__).resolve().parent / "data" / "static_injections"


@pytest.fixture(scope="module")
def clean_report():
    """One whole-program run over the shipped tree."""
    return checker.check()


@pytest.fixture(scope="module")
def injected_report():
    """One whole-program run with every seeded fixture in the graph."""
    return checker.check(extra_paths=sorted(FIXTURES.glob("*.py")))


def findings_in(report, filename):
    return [
        finding for finding in report.findings
        if Path(finding.path).name == filename
    ]


def marker_line(filename, marker):
    for lineno, line in enumerate(
        (FIXTURES / filename).read_text(encoding="utf-8").splitlines(), 1
    ):
        if marker in line:
            return lineno
    raise AssertionError(f"{marker!r} not found in {filename}")


# ----------------------------------------------------------------------
# The CI gate: dogfood + seeded detection
# ----------------------------------------------------------------------

def test_checker_clean_on_this_tree(clean_report):
    """Direction 1 of the gate: zero unwaived findings on the shipped
    tree (the checked-in baseline holds explicitly waived findings
    only — currently none)."""
    assert clean_report.findings == []


def test_injections_do_not_contaminate_the_tree(injected_report):
    """Every finding from the injected run lands in a fixture file —
    the fixtures import production modules without implicating them."""
    for finding in injected_report.findings:
        assert str(FIXTURES) in finding.path


def test_conp_sigma2_leak_flagged(injected_report):
    """A fake coNP (``pws``-row) semantics reaching
    ``find_minimal_satisfying`` through two helper hops is RPR101."""
    hits = [
        finding
        for finding in findings_in(injected_report, "conp_sigma2_leak.py")
        if finding.rule == "RPR101"
    ]
    assert hits, "seeded coNP→Σ₂ᵖ leak was not detected"
    lines = {finding.line for finding in hits}
    assert marker_line("conp_sigma2_leak.py", "def infers") in lines
    direct = next(
        finding for finding in hits
        if finding.line == marker_line("conp_sigma2_leak.py", "def infers")
    )
    assert "find_minimal_satisfying" in direct.message
    assert "_helper_one" in direct.message  # witness path rendered


def test_unguarded_write_fixture(injected_report):
    """Mixed guarded/unguarded mutation: RPR201 for the plain write,
    RPR202 for the read-modify-write, each at the seeded line."""
    hits = findings_in(injected_report, "unguarded_write_race.py")
    by_rule = {finding.rule: finding.line for finding in hits}
    assert by_rule.get("RPR201") == marker_line(
        "unguarded_write_race.py", "seeded RPR201"
    )
    assert by_rule.get("RPR202") == marker_line(
        "unguarded_write_race.py", "seeded RPR202"
    )


def test_lock_order_inversion_fixture(injected_report):
    hits = [
        finding
        for finding in findings_in(
            injected_report, "lock_order_inversion.py"
        )
        if finding.rule == "RPR203"
    ]
    assert len(hits) == 1  # the inverted pair is reported once
    assert hits[0].line == marker_line(
        "lock_order_inversion.py", "seeded RPR203"
    )
    assert "forward" in hits[0].message
    assert "backward" in hits[0].message


def test_runtime_stats_rmw_fixture(injected_report):
    """The original PR 9 pattern, re-injected: RPR202 on the facade."""
    hits = [
        finding
        for finding in findings_in(injected_report, "runtime_stats_rmw.py")
        if finding.rule == "RPR202"
    ]
    assert [finding.line for finding in hits] == [
        marker_line("runtime_stats_rmw.py", "seeded RPR202")
    ]
    assert "RUNTIME_STATS" in hits[0].message


def test_executor_escape_fixture(injected_report):
    hits = findings_in(injected_report, "executor_escape.py")
    rules = {finding.rule: finding.line for finding in hits}
    assert rules.get("RPR201") == marker_line(
        "executor_escape.py", "seeded RPR201"
    )
    assert rules.get("RPR204") == marker_line(
        "executor_escape.py", "seeded RPR204"
    )


def test_nightly_sweep_skips_injection_dir(tmp_path):
    """Sweeping a *directory* skips the seeded fixtures (the nightly
    ``check tests/`` gate must stay clean); explicit files analyze."""
    assert checker._expand_extra([FIXTURES.parent]) == []
    one = FIXTURES / "runtime_stats_rmw.py"
    assert checker._expand_extra([one]) == [one]


# ----------------------------------------------------------------------
# Pass 1 mechanics: certify-derived allowances + fallback edges
# ----------------------------------------------------------------------

def test_sigma2_allowances_derived_from_certifier():
    """No hand-maintained second table: the per-(semantics, entry)
    allowance comes straight from the certifier's claims."""
    # ddr/pws: ≤ coNP in every cell — nothing may dispatch Σ₂ᵖ.
    for name in ("ddr", "pws"):
        for method in ("infers", "infers_literal", "has_model"):
            assert complexity.sigma2_allowed(name, method) is False
    # The Σ₂ᵖ/Π₂ᵖ rows admit dispatch on inference...
    assert complexity.sigma2_allowed("ecwa", "infers") is True
    assert complexity.sigma2_allowed("gcwa", "infers") is True
    # ...but EXISTS-MODEL stays NP-cheap for the closure families.
    assert complexity.sigma2_allowed("gcwa", "has_model") is False
    assert complexity.sigma2_allowed("ecwa", "has_model") is False
    # Aliases fold before lookup; unknown names make no claim.
    assert complexity.sigma2_allowed("circ", "infers") is True
    assert complexity.sigma2_allowed("not_a_semantics", "infers") is None


def test_fallback_edge_annotation_cuts_reachability(tmp_path):
    """The acceptance pair: an unannotated coNP→Σ₂ᵖ dispatch is
    flagged; the same dispatch behind ``# static: fallback-edge`` (the
    resilient engine's degraded-mode shape) is not."""
    source = textwrap.dedent(
        """\
        from repro.sat.minimal import MinimalModelSolver
        from repro.semantics.base import Semantics


        class ProbePws(Semantics):
            name = "pws"

            def infers(self, db, formula):
                solver = MinimalModelSolver(db)
                # static: fallback-edge -- declared degraded mode
                return solver.find_minimal_satisfying(None) is not None
        """
    )
    annotated = tmp_path / "annotated_probe.py"
    annotated.write_text(source, encoding="utf-8")
    assert checker.check(extra_paths=[annotated]).findings == []

    bare = tmp_path / "bare_probe.py"
    bare.write_text(
        source.replace(
            "        # static: fallback-edge -- declared degraded mode\n",
            "",
        ),
        encoding="utf-8",
    )
    rules = {
        finding.rule
        for finding in checker.check(extra_paths=[bare]).findings
    }
    assert "RPR101" in rules


def test_resilient_fallback_is_a_declared_edge(clean_report):
    """The real degraded-mode site carries the annotation: no finding
    and no RPR100 warning points at the resilient fallback dispatch."""
    resilient = [
        finding
        for finding in clean_report.findings + clean_report.warnings
        if Path(finding.path).name == "resilient.py"
        and "fallback" in finding.message
    ]
    assert resilient == []
    source = Path("src/repro/engine/resilient.py").read_text(
        encoding="utf-8"
    )
    assert "# static: fallback-edge" in source


def test_summary_reports_primitives_and_entry_points(clean_report):
    summary = clean_report.summary["complexity"]
    assert summary["primitives"]["sigma2"] >= 5  # the minimal solvers
    assert summary["primitives"]["np"] >= 1  # SatSolver.solve
    entries = {
        (entry["semantics"], method)
        for entry in summary["semantics_entry_points"]
        for method in entry["entry_points"]
    }
    assert ("pws", "infers") in entries
    locks = clean_report.summary["races"]["lock_classes"]
    assert any("EngineCache" in name for name in locks)
    assert any("SolverPool" in name for name in locks)


# ----------------------------------------------------------------------
# Call-graph builder
# ----------------------------------------------------------------------

def build_extra(*paths):
    return CallGraph.build(package_root=None, extra_paths=list(paths))


def test_callgraph_cycles_terminate(tmp_path):
    mod = tmp_path / "cyc.py"
    mod.write_text(
        "def f():\n    return g()\n\n\ndef g():\n    return f()\n",
        encoding="utf-8",
    )
    graph = build_extra(mod)
    assert set(graph.reachable("cyc.f")) == {"cyc.f", "cyc.g"}
    assert set(graph.reachable("cyc.g")) == {"cyc.f", "cyc.g"}


def test_callgraph_decorated_defs(tmp_path):
    mod = tmp_path / "deco.py"
    mod.write_text(
        textwrap.dedent(
            """\
            def wrap(fn):
                return fn


            @wrap
            def prim():
                pass


            def user():
                return prim()
            """
        ),
        encoding="utf-8",
    )
    graph = build_extra(mod)
    assert graph.functions["deco.prim"].decorators == {"wrap"}
    assert "deco.prim" in graph.reachable("deco.user")


def test_callgraph_getattr_is_warning_not_miss(tmp_path):
    mod = tmp_path / "dyn.py"
    mod.write_text(
        textwrap.dedent(
            """\
            def by_name(obj, name):
                return getattr(obj, name)()


            def computed(table):
                return table[0]()
            """
        ),
        encoding="utf-8",
    )
    graph = build_extra(mod)
    assert graph.functions["dyn.by_name"].calls == []
    assert graph.functions["dyn.computed"].calls == []
    rules = {warning.rule for warning in graph.warnings}
    assert rules == {"RPR100"}
    # by_name warns twice (the getattr itself and the computed outer
    # call), computed once — conservatism is never silent.
    assert len(graph.warnings) == 3


def test_callgraph_relative_imports(tmp_path):
    (tmp_path / "sub").mkdir()
    (tmp_path / "top.py").write_text(
        "def shared():\n    pass\n", encoding="utf-8"
    )
    (tmp_path / "sub" / "leaf.py").write_text(
        "from ..top import shared\n\n\ndef h():\n    return shared()\n",
        encoding="utf-8",
    )
    graph = CallGraph.build(package_root=tmp_path, package_name="pkg")
    assert "pkg.top.shared" in graph.reachable("pkg.sub.leaf.h")


def test_callgraph_late_bound_self_dispatch(tmp_path):
    mod = tmp_path / "mro.py"
    mod.write_text(
        textwrap.dedent(
            """\
            class Base:
                def run(self):
                    return self.hook()

                def hook(self):
                    return 0


            class Child(Base):
                def hook(self):
                    return 1
            """
        ),
        encoding="utf-8",
    )
    graph = build_extra(mod)
    assert graph.resolve_method("mro.Child", "run") == "mro.Base.run"
    reached = graph.reachable("mro.Base.run", self_class="mro.Child")
    assert "mro.Child.hook" in reached
    assert "mro.Base.hook" not in reached
    # Entered as Base, the same method resolves the base hook.
    reached = graph.reachable("mro.Base.run", self_class="mro.Base")
    assert "mro.Base.hook" in reached


def test_callgraph_brute_branch_pruned(tmp_path):
    mod = tmp_path / "brute.py"
    mod.write_text(
        textwrap.dedent(
            """\
            class E:
                def enum(self):
                    pass

                def fast(self):
                    pass

                def run(self):
                    if self.engine == "brute":
                        return self.enum()
                    return self.fast()
            """
        ),
        encoding="utf-8",
    )
    graph = build_extra(mod)
    sites = {
        site.target: site.brute_guarded
        for site in graph.functions["brute.E.run"].calls
    }
    assert sites == {"enum": True, "fast": False}
    pruned = graph.reachable("brute.E.run", skip_brute=True)
    assert "brute.E.fast" in pruned
    assert "brute.E.enum" not in pruned
    full = graph.reachable("brute.E.run")
    assert "brute.E.enum" in full


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_callgraph_matches_reference_reachability(tmp_path, data):
    """Random two-module call graphs: the builder's reachability must
    equal a reference BFS over the generated edge list, with zero
    dynamic-dispatch warnings (every call is a plain name)."""
    n_a = data.draw(st.integers(1, 4), label="funcs in ma")
    n_b = data.draw(st.integers(1, 4), label="funcs in mb")
    names = [f"a{i}" for i in range(n_a)] + [f"b{i}" for i in range(n_b)]
    edges = data.draw(
        st.sets(
            st.tuples(
                st.integers(0, len(names) - 1),
                st.integers(0, len(names) - 1),
            ),
            max_size=12,
        ),
        label="edges",
    )
    modules = {"ma": names[:n_a], "mb": names[n_a:]}
    sources = {}
    for mod, own in modules.items():
        other = "mb" if mod == "ma" else "ma"
        lines = [f"from {other} import {name}" for name in modules[other]]
        for name in own:
            index = names.index(name)
            body = [
                f"    {names[callee]}()"
                for caller, callee in sorted(edges)
                if caller == index
            ] or ["    pass"]
            lines.append(f"def {name}():")
            lines.extend(body)
        sources[mod] = "\n".join(lines) + "\n"
    import tempfile

    root = Path(tempfile.mkdtemp(dir=tmp_path))
    for mod, source in sources.items():
        (root / f"{mod}.py").write_text(source, encoding="utf-8")
    graph = CallGraph.build(
        package_root=None,
        extra_paths=[root / "ma.py", root / "mb.py"],
    )
    assert graph.warnings == []

    def qual(index):
        name = names[index]
        return f"{'ma' if index < n_a else 'mb'}.{name}"

    for start in range(len(names)):
        expected, queue = {start}, [start]
        while queue:
            current = queue.pop()
            for caller, callee in edges:
                if caller == current and callee not in expected:
                    expected.add(callee)
                    queue.append(callee)
        got = set(graph.reachable(qual(start)))
        assert got == {qual(index) for index in sorted(expected)}


# ----------------------------------------------------------------------
# RPR004 alias blind spot (lint satellite)
# ----------------------------------------------------------------------

def test_lint_rpr004_sees_through_aliases(tmp_path):
    bad = tmp_path / "alias_loop.py"
    bad.write_text(
        textwrap.dedent(
            """\
            def drain(solver):
                step = solver.solve
                while True:
                    if not step():
                        return
            """
        ),
        encoding="utf-8",
    )
    assert [finding.rule for finding in lint_paths([bad])] == ["RPR004"]

    chained = tmp_path / "alias_chain.py"
    chained.write_text(
        textwrap.dedent(
            """\
            def drain(solver):
                step = solver.solve
                go = step
                while True:
                    if not go():
                        return
            """
        ),
        encoding="utf-8",
    )
    assert [
        finding.rule for finding in lint_paths([chained])
    ] == ["RPR004"]

    good = tmp_path / "alias_loop_ok.py"
    good.write_text(
        textwrap.dedent(
            """\
            def drain(solver, check_deadline):
                step = solver.solve
                while True:
                    check_deadline()
                    if not step():
                        return
            """
        ),
        encoding="utf-8",
    )
    assert lint_paths([good]) == []


# ----------------------------------------------------------------------
# Baseline / diff machinery
# ----------------------------------------------------------------------

def _seeded_violation(tmp_path, name="seeded.py"):
    seeded = tmp_path / name
    seeded.write_text(
        "from repro.sat.solver import SatSolver\n\n\n"
        "def build():\n"
        "    return SatSolver()\n",
        encoding="utf-8",
    )
    return seeded


def test_baseline_roundtrip_budgets_duplicates(tmp_path):
    from repro.analysis.lint import Finding

    first = Finding("RPR001", "src/repro/x.py", 3, 0, "msg")
    twin = Finding("RPR001", "src/repro/x.py", 9, 0, "msg")
    other = Finding("RPR002", "src/repro/y.py", 1, 0, "other")
    path = tmp_path / "base.json"
    baseline_mod.save_baseline([first], path)
    budget = baseline_mod.load_baseline(path)
    # Identical fingerprints are budgeted by count: one baselined,
    # the second occurrence is new; the unrelated rule is always new.
    new = baseline_mod.filter_new([first, twin, other], budget)
    assert new == [twin, other]


def test_normalize_path_strips_checkout_prefix():
    assert (
        baseline_mod.normalize_path("/home/ci/repo/src/repro/cli.py")
        == "src/repro/cli.py"
    )
    assert (
        baseline_mod.normalize_path("tests/test_static_check.py")
        == "tests/test_static_check.py"
    )


def test_lint_baseline_gates_only_new_findings(tmp_path, capsys):
    seeded = _seeded_violation(tmp_path)
    base = tmp_path / "baseline.json"
    assert lint_main(
        [str(seeded), "--write-baseline", str(base)]
    ) == 0
    capsys.readouterr()
    # Same findings, baselined: gate passes.
    assert lint_main([str(seeded), "--baseline", str(base)]) == 0
    assert "[baselined]" in capsys.readouterr().out
    # A second violation shows up as new: gate fails.
    seeded.write_text(
        seeded.read_text(encoding="utf-8")
        + "\n\ndef build_two():\n    return SatSolver()\n",
        encoding="utf-8",
    )
    assert lint_main([str(seeded), "--baseline", str(base)]) == 1


def test_changed_files_in_throwaway_git_repo(tmp_path):
    def git(*args):
        subprocess.run(
            ["git", *args], cwd=str(tmp_path), check=True,
            capture_output=True,
        )

    try:
        git("init", "-q")
        git("config", "user.email", "ci@example.invalid")
        git("config", "user.name", "ci")
    except Exception:
        pytest.skip("git unavailable")
    tracked = tmp_path / "tracked.py"
    tracked.write_text("x = 1\n", encoding="utf-8")
    git("add", "tracked.py")
    git("commit", "-qm", "seed")
    assert baseline_mod.changed_files(tmp_path) == set()
    tracked.write_text("x = 2\n", encoding="utf-8")
    fresh = tmp_path / "fresh.py"
    fresh.write_text("y = 1\n", encoding="utf-8")
    changed = baseline_mod.changed_files(tmp_path)
    assert changed == {str(tracked.resolve()), str(fresh.resolve())}


def test_restrict_to_changed(tmp_path):
    from repro.analysis.lint import Finding

    kept_path = tmp_path / "kept.py"
    kept_path.write_text("", encoding="utf-8")
    kept = Finding("RPR001", str(kept_path), 1, 0, "m")
    dropped = Finding("RPR001", str(tmp_path / "other.py"), 1, 0, "m")
    assert baseline_mod.restrict_to_changed(
        [kept, dropped], {str(kept_path.resolve())}
    ) == [kept]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

def test_cli_check_rules(capsys):
    assert cli_main(["check", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("RPR100", "RPR101", "RPR203", "RPR204"):
        assert rule in out


def test_cli_check_flags_fixture_and_gate(capsys):
    fixture = FIXTURES / "runtime_stats_rmw.py"
    assert cli_main(["check", str(fixture)]) == 1
    out = capsys.readouterr().out
    assert "RPR202" in out
    assert "runtime_stats_rmw.py" in out


def test_checker_waiver_suppresses(tmp_path):
    waived = tmp_path / "waived_rmw.py"
    waived.write_text(
        "from repro.runtime.budget import RUNTIME_STATS\n"
        "\n"
        "\n"
        "def tick():\n"
        "    # static: ok RPR202 -- exercised single-threaded only\n"
        "    RUNTIME_STATS.budgets_exceeded += 1\n",
        encoding="utf-8",
    )
    assert checker.check(extra_paths=[waived]).findings == []
