"""Tests for repro.semantics.stratification."""

import pytest

from repro.errors import NotStratifiedError
from repro.logic.parser import parse_clause, parse_database
from repro.semantics.stratification import (
    is_stratified,
    require_stratification,
    stratify,
)
from repro.workloads import random_stratified_db, win_move_cycle, win_move_path


class TestStratify:
    def test_positive_db_is_single_stratum(self, simple_db):
        stratification = stratify(simple_db)
        assert len(stratification) == 1
        assert stratification.strata[0] == simple_db.vocabulary

    def test_negation_creates_strata(self, stratified_db):
        stratification = stratify(stratified_db)
        assert stratification is not None
        # d depends negatively on c, so d sits strictly above c.
        assert stratification.level("d") > stratification.level("c")

    def test_unstratified_loop_detected(self, unstratified_db):
        assert stratify(unstratified_db) is None
        assert not is_stratified(unstratified_db)

    def test_odd_cycle_not_stratified(self):
        assert not is_stratified(win_move_cycle(3))

    def test_even_cycle_not_stratified(self):
        # Even loops have stable models but are still unstratifiable.
        assert not is_stratified(win_move_cycle(2))

    def test_path_is_stratified(self):
        db = win_move_path(5)
        stratification = stratify(db)
        assert stratification is not None
        # win1 :- not win2 => level(win1) > level(win2).
        assert stratification.level("win1") > stratification.level("win2")

    def test_positive_cycles_are_fine(self):
        db = parse_database("a :- b. b :- a.")
        stratification = stratify(db)
        assert stratification is not None
        assert stratification.level("a") == stratification.level("b")

    def test_heads_share_a_stratum(self):
        db = parse_database("a | b :- not c. d :- not a.")
        stratification = stratify(db)
        assert stratification.level("a") == stratification.level("b")
        assert stratification.level("d") > stratification.level("a")

    def test_require_raises(self, unstratified_db):
        with pytest.raises(NotStratifiedError):
            require_stratification(unstratified_db)

    def test_every_atom_in_exactly_one_stratum(self, stratified_db):
        stratification = stratify(stratified_db)
        seen = [a for stratum in stratification.strata for a in stratum]
        assert sorted(seen) == sorted(stratified_db.vocabulary)


class TestStratificationValidity:
    @pytest.mark.parametrize("seed", range(6))
    def test_generated_stratifications_satisfy_conditions(self, seed):
        db = random_stratified_db(6, 8, seed=seed)
        stratification = require_stratification(db)
        for clause in db.clauses:
            if not clause.head:
                continue
            head_level = stratification.level(next(iter(clause.head)))
            for atom in clause.head:
                assert stratification.level(atom) == head_level
            for atom in clause.body_pos:
                assert stratification.level(atom) <= head_level
            for atom in clause.body_neg:
                assert stratification.level(atom) < head_level

    def test_clause_level(self, stratified_db):
        stratification = stratify(stratified_db)
        clause = parse_clause("d :- b, not c.")
        assert stratification.clause_level(clause) == stratification.level("d")
        ic = parse_clause(":- a, d.")
        assert stratification.clause_level(ic) == stratification.level("d")

    def test_priority_levels_order(self, stratified_db):
        stratification = stratify(stratified_db)
        levels = stratification.priority_levels()
        assert levels[0] == stratification.strata[0]
