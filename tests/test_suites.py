"""Tests pinning the named instance suites (reproducibility stamps)."""

import pytest

from repro.workloads.suites import (
    ALL_SUITES,
    normal_suite,
    stratified_suite,
    suite_digests,
    table1_suite,
    table2_suite,
)

#: Pinned digests: any change to the generators' sampling behaviour (or
#: the canonical rendering) must be deliberate and update these.
PINNED = {
    "table1-positive":
        "5721655fef4103fea4f2bbc723a02557da9e8712fc9ad3f2c02b38bfe97e45ce",
    "table2-deductive-ics":
        "327607112c8354342b0260c18128a17ef92ebfcda7f01f1b92890f7f55e02bd2",
    "table2-normal":
        "dab0ab4581c2653b603937bc98743571de7939d3220debb58f95733652e669a2",
    "table2-stratified":
        "e34a544c686068b02a470c4d877d288d83edd637ea7ce4d469e8e372ce026cb4",
}


def test_digests_are_pinned():
    assert suite_digests() == PINNED


def test_digests_are_stable_across_rebuilds():
    assert table1_suite().digest() == table1_suite().digest()


def test_suites_honor_their_regimes():
    assert all(db.is_positive for db in table1_suite().instances)
    assert any(
        db.has_integrity_clauses for db in table2_suite().instances
    )
    from repro.semantics.stratification import is_stratified

    assert all(is_stratified(db) for db in stratified_suite().instances)
    assert any(db.has_negation for db in normal_suite().instances)


def test_stats_fields():
    stats = table1_suite().stats()
    assert stats["instances"] == 8
    assert stats["clauses"] > 0
    assert stats["integrity"] == 0  # positive regime


def test_registry_builds_everything():
    for name, build in ALL_SUITES.items():
        suite = build()
        assert suite.name == name
        assert suite.instances
