"""Tests for Clark completion / supported models (and Fages' theorem)."""

import pytest
from hypothesis import given

from repro.errors import NotPositiveError
from repro.logic.parser import parse_database, parse_formula
from repro.semantics import get_semantics
from repro.semantics.supported import (
    clark_completion,
    is_supported_model,
    is_tight,
)

from test_wfs_cwa_state import normal_programs


class TestCompletion:
    def test_headless_atom_is_forced_false(self):
        db = parse_database("a :- b.")
        completion = clark_completion(db)
        # b has no rules: completion forces b false, hence a false.
        assert completion.evaluate(set())
        assert not completion.evaluate({"b"})
        assert not completion.evaluate({"a"})

    def test_fact_is_forced_true(self):
        db = parse_database("a.")
        completion = clark_completion(db)
        assert completion.evaluate({"a"})
        assert not completion.evaluate(set())

    def test_integrity_clauses_kept(self):
        db = parse_database("a. :- a.")
        assert not get_semantics("supported").has_model(db)

    def test_rejects_disjunctive(self, simple_db):
        with pytest.raises(NotPositiveError):
            clark_completion(simple_db)

    @given(normal_programs())
    def test_completion_models_are_supported_models(self, db):
        from repro.logic.interpretation import all_interpretations

        completion = clark_completion(db)
        for model in all_interpretations(db.vocabulary):
            assert completion.evaluate(model) == is_supported_model(
                db, model
            )


class TestSupportedSemantics:
    def test_positive_loop_is_supported_not_stable(self):
        """The classic separation: a :- a supports {a} (the rule fires)
        but {a} is not stable (the reduct's minimal model is empty)."""
        db = parse_database("a :- a.")
        supported = get_semantics("supported").model_set(db)
        stable = get_semantics("dsm").model_set(db)
        assert frozenset({"a"}) in {frozenset(m) for m in supported}
        assert frozenset({"a"}) not in {frozenset(m) for m in stable}

    def test_inference(self):
        db = parse_database("a :- not b.")
        supported = get_semantics("supported")
        assert supported.infers(db, parse_formula("a | b"))
        assert not supported.infers_literal(db, "b")

    @given(normal_programs())
    def test_oracle_matches_brute(self, db):
        oracle = get_semantics("supported").model_set(db)
        brute = get_semantics("supported", engine="brute").model_set(db)
        assert oracle == brute

    @given(normal_programs())
    def test_stable_models_are_supported(self, db):
        supported = get_semantics("supported").model_set(db)
        stable = get_semantics("dsm").model_set(db)
        assert stable <= supported

    @given(normal_programs())
    def test_fages_theorem(self, db):
        """On tight programs (no positive cycles) supported = stable."""
        if not is_tight(db):
            return
        supported = get_semantics("supported").model_set(db)
        stable = get_semantics("dsm").model_set(db)
        assert supported == stable


class TestTightness:
    def test_positive_cycle_detected(self):
        assert not is_tight(parse_database("a :- b. b :- a."))

    def test_negative_cycles_do_not_matter(self):
        assert is_tight(parse_database("a :- not b. b :- not a."))

    def test_self_loop(self):
        assert not is_tight(parse_database("a :- a."))

    def test_acyclic(self):
        assert is_tight(parse_database("a :- b, not c. b :- not c."))
