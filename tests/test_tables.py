"""Tests for the Tables 1/2 reproduction harness (repro.tables)."""

import pytest

from repro.complexity.classes import Regime, Task
from repro.tables import claims_grid, measure_cell, render_table
from repro.tables.evidence import CellEvidence


class TestClaimsGrid:
    def test_table1_layout(self):
        grid = claims_grid(Regime.POSITIVE)
        assert "GCWA" in grid
        assert "DDR (=WGCWA)" in grid
        assert "Pi2p-complete" in grid
        assert "O(1)" in grid

    def test_table2_differs(self):
        t1 = claims_grid(Regime.POSITIVE)
        t2 = claims_grid(Regime.WITH_ICS)
        assert t1 != t2
        assert "NP-complete" in t2

    def test_render_table_titles(self):
        assert "Table 1" in render_table(Regime.POSITIVE)
        assert "Table 2" in render_table(Regime.WITH_ICS)


class TestMeasureCell:
    def test_constant_cell_uses_no_oracle(self):
        evidence = measure_cell(
            "egcwa", Task.EXISTS_MODEL, Regime.POSITIVE,
            instances=2, atoms=4, clauses=4, with_hardness=False,
        )
        assert evidence.ok
        assert evidence.agreement
        assert evidence.max_sat_calls == 0

    def test_tractable_literal_cell(self):
        evidence = measure_cell(
            "ddr", Task.LITERAL, Regime.POSITIVE,
            instances=2, atoms=4, clauses=4, with_hardness=False,
        )
        assert evidence.ok
        assert evidence.max_sat_calls == 0  # pure fixpoint, no oracle

    def test_theta_cell_respects_bound(self):
        evidence = measure_cell(
            "gcwa", Task.FORMULA, Regime.POSITIVE,
            instances=2, atoms=4, clauses=4, with_hardness=False,
        )
        assert evidence.ok
        assert evidence.max_sigma2_calls is not None
        assert evidence.max_sigma2_calls <= evidence.sigma2_bound

    def test_pi2_cell_with_hardness(self):
        evidence = measure_cell(
            "egcwa", Task.LITERAL, Regime.POSITIVE,
            instances=2, atoms=4, clauses=4,
            with_hardness=True, hardness_instances=1,
        )
        assert evidence.ok
        assert evidence.hardness is not None
        assert evidence.hardness.ok

    def test_sigma2_existence_cell(self):
        evidence = measure_cell(
            "dsm", Task.EXISTS_MODEL, Regime.WITH_ICS,
            instances=2, atoms=4, clauses=4,
            with_hardness=True, hardness_instances=1,
        )
        assert evidence.ok

    def test_render_mentions_agreement(self):
        evidence = CellEvidence(
            row="gcwa", task=Task.LITERAL, regime=Regime.POSITIVE,
            agreement=True, instances=3, max_sat_calls=5,
        )
        assert "agrees with brute force" in evidence.render()

    def test_failed_agreement_flips_ok(self):
        evidence = CellEvidence(
            row="gcwa", task=Task.LITERAL, regime=Regime.POSITIVE,
            agreement=False,
        )
        assert not evidence.ok


class TestScalingStudy:
    def test_rows_have_expected_shape(self):
        from repro.tables.scaling import run_scaling_study

        rows = run_scaling_study(2, 3)
        assert [row.size for row in rows] == [2, 3]
        for row in rows:
            assert row.shape_ok(), row

    def test_render_rows(self):
        from repro.tables.scaling import render_rows, run_scaling_study

        text = render_rows(run_scaling_study(2, 2))
        assert "P-cell ms" in text and "naive" in text
