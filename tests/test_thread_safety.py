"""Thread/task-safety audit of the process-wide singletons.

The serve layer runs evaluation on a thread pool, so every global it
touches must hold up under interleaving: the engine LRU cache
(:data:`repro.engine.cache.ENGINE_CACHE`), the solver pool
(:data:`repro.sat.incremental.SOLVER_POOL`), the metrics registry
(:data:`repro.obs.metrics.METRICS`), the runtime counter facade
(:data:`repro.runtime.budget.RUNTIME_STATS`) and the module-global
tracer.  Each test here drives a *fresh* instance of the class behind
the singleton from many threads with hypothesis-chosen schedules and
asserts exact counter arithmetic — lost updates show up as off-by-N.

One test is a pure source scan: the audit found that
``RUNTIME_STATS.<counter> += 1`` expands to a locked read followed by a
locked write (two critical sections, not one), which loses updates under
interleaving.  Every call site was migrated to the atomic
:meth:`~repro.runtime.budget.RuntimeStats.inc`; the scan keeps the racy
pattern from creeping back.
"""

from __future__ import annotations

import json
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cache import EngineCache
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.runtime.budget import RUNTIME_STATS
from repro.sat.incremental import SolverPool


def run_threads(count, target):
    """Start ``count`` threads on ``target(index)`` and join them all;
    re-raise the first worker exception in the caller."""
    errors = []

    def wrap(index):
        try:
            target(index)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=wrap, args=(index,))
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


# ----------------------------------------------------------------------
# Engine LRU cache
# ----------------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(
    threads=st.integers(min_value=2, max_value=8),
    keys=st.integers(min_value=1, max_value=6),
    rounds=st.integers(min_value=5, max_value=40),
)
def test_engine_cache_interleaved_get_or_compute(threads, keys, rounds):
    """Racing lookups never observe a wrong value, and the hit/miss
    arithmetic reconciles exactly with the number of lookups."""
    cache = EngineCache(maxsize=64)
    builds = []
    build_lock = threading.Lock()

    def worker(index):
        for round_no in range(rounds):
            key = (index + round_no) % keys

            def builder(key=key):
                with build_lock:
                    builds.append(key)
                return ("value", key)

            value = cache.get_or_compute("kind", key, builder)
            assert value == ("value", key)

    run_threads(threads, worker)
    stats = cache.stats()
    lookups = threads * rounds
    assert stats["hits"] + stats["misses"] == lookups
    # Racing threads may each observe a miss for the same key, but the
    # cache ends up with exactly the distinct keys, no duplicates/loss.
    assert len(cache) == keys
    assert stats["misses"] >= keys
    assert stats["misses"] == len(builds)
    assert stats["evictions"] == 0


def test_engine_cache_first_store_wins_on_race():
    """When two threads miss the same key, every caller gets the one
    stored value (no torn publication)."""
    cache = EngineCache(maxsize=8)
    barrier = threading.Barrier(4)
    seen = []
    seen_lock = threading.Lock()

    def worker(index):
        barrier.wait()

        def builder():
            return ("built-by", index)

        value = cache.get_or_compute("race", "k", builder)
        with seen_lock:
            seen.append(value)

    run_threads(4, worker)
    # All four observed the same winning value, which is the cached one.
    assert len(set(seen)) == 1
    assert cache.peek("race", "k") == seen[0]


# ----------------------------------------------------------------------
# Solver pool
# ----------------------------------------------------------------------

class _StubSolver:
    """Just enough surface for SolverPool bookkeeping."""

    def __init__(self):
        self.scopes_retired = 0
        self._last_checkout_token = None

    def num_learned(self):
        return 1


@settings(max_examples=15, deadline=None)
@given(
    threads=st.integers(min_value=2, max_value=8),
    keys=st.integers(min_value=1, max_value=3),
    rounds=st.integers(min_value=5, max_value=30),
)
def test_solver_pool_checkout_exclusivity(threads, keys, rounds):
    """A checked-out solver is never concurrently held by two threads,
    and the created/reused/released counters reconcile exactly."""
    pool = SolverPool(maxsize=8)
    in_use = set()
    in_use_lock = threading.Lock()

    def worker(index):
        for round_no in range(rounds):
            key = (index + round_no) % keys
            solver = pool.acquire(key, _StubSolver)
            with in_use_lock:
                # acquire() removes the solver from the pool, so no
                # other thread may hold this exact instance right now.
                assert id(solver) not in in_use
                in_use.add(id(solver))
            with in_use_lock:
                in_use.remove(id(solver))
            pool.release(key, solver)

    run_threads(threads, worker)
    acquires = threads * rounds
    stats = pool.stats()
    assert (
        stats["solvers_created"]
        + stats["solver_reuses"]
        + stats["solver_repeat_checkouts"]
        == acquires
    )
    assert stats["solver_releases"] == acquires
    # Conservation: only acquire() creates instances, so the pool can
    # never hold more solvers than were ever built, nor exceed its
    # bound, and discards/evictions can't outnumber releases.
    assert stats["solvers_pooled"] <= stats["pool_maxsize"]
    assert stats["solvers_pooled"] <= stats["solvers_created"]
    assert (
        stats["solvers_discarded"] + stats["solver_evictions"]
        <= stats["solver_releases"]
    )


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

def test_metrics_counters_exact_under_threads():
    registry = MetricsRegistry()
    counter = registry.counter("ts_total", "racing counter")
    labelled = registry.counter(
        "ts_labelled_total", "racing family", labelnames=("who",)
    )
    hist = registry.histogram(
        "ts_hist", "racing histogram", buckets=(1.0, 10.0)
    )
    gauge = registry.gauge("ts_gauge", "racing gauge")
    per_thread = 400

    def worker(index):
        child = labelled.labels(who=f"w{index % 2}")
        for value in range(per_thread):
            counter.inc()
            child.inc()
            hist.observe(float(value % 5))
            gauge.inc()
            gauge.dec()

    run_threads(8, worker)
    assert counter.value == 8 * per_thread
    assert (
        labelled.labels(who="w0").value
        + labelled.labels(who="w1").value
        == 8 * per_thread
    )
    assert hist.count == 8 * per_thread
    assert hist.sum == 8 * sum(v % 5 for v in range(per_thread))
    assert gauge.value == 0
    # The exposition renders mid-traffic state without tearing.
    assert "ts_total 3200" in registry.expose()


# ----------------------------------------------------------------------
# Runtime counter facade
# ----------------------------------------------------------------------

def test_runtime_stats_inc_is_atomic():
    """Regression for the audited race: the ``+=`` facade was a locked
    read then a locked write, so concurrent bumps lost updates.  The
    atomic ``inc`` must account every single bump."""
    before = RUNTIME_STATS.snapshot()["budgets_exceeded"]
    per_thread = 500

    def worker(index):
        for _ in range(per_thread):
            RUNTIME_STATS.inc("budgets_exceeded")

    run_threads(8, worker)
    after = RUNTIME_STATS.snapshot()["budgets_exceeded"]
    assert after - before == 8 * per_thread
    # Put the counter back so other tests' snapshots stay meaningful.
    RUNTIME_STATS.budgets_exceeded = before


def test_runtime_stats_inc_rejects_unknown_counter():
    try:
        RUNTIME_STATS.inc("not_a_counter")
    except AttributeError:
        pass
    else:  # pragma: no cover - regression guard
        raise AssertionError("inc() accepted an unknown counter name")


def test_runtime_stats_rmw_caught_by_race_detector(tmp_path):
    """The ``RUNTIME_STATS.x += n`` lost-update pattern (the original
    PR 9 race, once policed by a regex scan here) is now rule RPR202 of
    the whole-program race detector: re-injecting the exact pattern
    into a module must produce a finding at the offending line, and the
    production tree itself must stay clean (``repro-ddb check`` gates
    this in CI)."""
    from repro.analysis.static import checker

    injected = tmp_path / "reinjected_pr9_race.py"
    injected.write_text(
        "from repro.runtime.budget import RUNTIME_STATS\n"
        "\n"
        "\n"
        "def tick():\n"
        "    RUNTIME_STATS.budgets_exceeded += 1\n",
        encoding="utf-8",
    )
    report = checker.check(extra_paths=[injected])
    hits = [
        finding for finding in report.findings
        if finding.rule == "RPR202" and finding.path == str(injected)
    ]
    assert [finding.line for finding in hits] == [5]
    # And the production tree carries no such site anywhere.
    assert [
        finding for finding in report.findings
        if finding.path != str(injected)
    ] == []


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------

def test_tracer_spans_from_many_threads():
    """Spans opened on the shared tracer from different threads keep
    their own parent stacks (the current-span slot is a ContextVar, so
    each thread nests independently) and every finished root lands in
    the ring buffer exactly once."""
    tracer = Tracer(max_finished=256)
    roots_per_thread = 20

    def worker(index):
        for round_no in range(roots_per_thread):
            with tracer.span(f"root-{index}-{round_no}") as root:
                with tracer.span("child") as child:
                    child.set_attribute("thread", index)
                assert tracer.current() is root

    run_threads(6, worker)
    roots = tracer.finished_roots()
    assert len(roots) == 6 * roots_per_thread
    names = {span.name for span in roots}
    assert len(names) == 6 * roots_per_thread  # no root lost or doubled
    for line in tracer.export_jsonl().splitlines():
        record = json.loads(line)
        assert len(record["children"]) == 1
