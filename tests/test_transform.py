"""Tests for repro.logic.transform."""

import itertools

import pytest
from hypothesis import given

from repro.logic.clause import Clause
from repro.logic.database import DisjunctiveDatabase
from repro.logic.formula import FALSE3, TRUE3, UNDEF3
from repro.logic.interpretation import (
    Interpretation,
    ThreeValuedInterpretation,
    all_interpretations,
)
from repro.logic.parser import parse_database
from repro.logic.transform import (
    gl_reduct,
    rename_atoms,
    shift_negation_to_head,
    split_count,
    split_programs,
    three_valued_reduct,
)

from conftest import databases


class TestGlReduct:
    def test_clause_with_true_negation_dropped(self):
        db = parse_database("a :- not b. c :- not d.")
        reduct = gl_reduct(db, {"b"})
        assert Clause.fact("c") in reduct.clauses
        assert all("a" not in c.head for c in reduct.clauses)

    def test_negative_literals_stripped(self):
        db = parse_database("a :- b, not c.")
        reduct = gl_reduct(db, set())
        assert Clause.rule(["a"], ["b"]) in reduct.clauses

    def test_reduct_is_positive(self):
        db = parse_database("a | b :- c, not d. :- not a.")
        for model in all_interpretations(db.vocabulary):
            assert not gl_reduct(db, model).has_negation

    def test_positive_db_is_fixed_point(self, simple_db):
        assert gl_reduct(simple_db, {"a"}).clauses == simple_db.clauses

    def test_vocabulary_preserved(self):
        db = parse_database("a :- not b.")
        assert gl_reduct(db, {"b"}).vocabulary == {"a", "b"}


class TestShiftNegation:
    def test_shift_moves_negation_to_head(self):
        db = parse_database("a :- b, not c.")
        shifted = shift_negation_to_head(db)
        assert Clause.rule(["a", "c"], ["b"]) in shifted.clauses

    @given(databases())
    def test_classical_models_unchanged(self, db):
        shifted = shift_negation_to_head(db)
        for model in all_interpretations(db.vocabulary):
            assert db.is_model(model) == shifted.is_model(model)

    @given(databases())
    def test_result_is_negation_free(self, db):
        assert not shift_negation_to_head(db).has_negation


class TestSplitPrograms:
    def test_split_count_formula(self):
        db = parse_database("a | b. c | d | e :- a.")
        assert split_count(db) == 3 * 7

    def test_split_count_matches_enumeration(self):
        db = parse_database("a | b. c :- a. :- b, c.")
        assert split_count(db) == len(list(split_programs(db)))

    def test_splits_are_nondisjunctive(self):
        db = parse_database("a | b. c | d :- a.")
        for split in split_programs(db):
            assert split.is_normal_nondisjunctive

    def test_splits_keep_integrity_clauses(self):
        db = parse_database("a | b. :- a, b.")
        for split in split_programs(db):
            assert Clause.integrity(["a", "b"]) in split.clauses

    def test_split_models_are_models_of_original(self):
        db = parse_database("a | b. c :- a.")
        for split in split_programs(db):
            for model in all_interpretations(db.vocabulary):
                if split.is_model(model):
                    assert db.is_model(model)


class TestThreeValuedReduct:
    def test_bounds_from_negative_body(self):
        db = parse_database("a :- b, not c.")
        fully_false = ThreeValuedInterpretation(set(), set())
        (clause,) = three_valued_reduct(db, fully_false)
        assert clause.bound == TRUE3  # not c has value 1 - 0 = 1

        c_undef = ThreeValuedInterpretation(set(), {"c"})
        (clause,) = three_valued_reduct(db, c_undef)
        assert clause.bound == UNDEF3

        c_true = ThreeValuedInterpretation({"c"}, {"c"})
        (clause,) = three_valued_reduct(db, c_true)
        assert clause.bound == FALSE3

    def test_valued_clause_satisfaction(self):
        db = parse_database("a :- b, not c.")
        i = ThreeValuedInterpretation({"b"}, {"a", "b"})  # a=1/2, b=1, c=0
        (clause,) = three_valued_reduct(db, i)
        # body value = min(1, 1) = 1 but head a has value 1/2.
        assert not clause.satisfied_by(i)
        j = ThreeValuedInterpretation({"a", "b"}, {"a", "b"})
        assert clause.satisfied_by(j)

    def test_total_reduct_matches_gl_reduct(self):
        """On total interpretations the 3-valued reduct's satisfaction
        coincides with classical satisfaction of the GL reduct."""
        db = parse_database("a | b :- c, not d. e :- not a. :- a, e.")
        for model in all_interpretations(db.vocabulary):
            total = ThreeValuedInterpretation.total(model)
            reduct3 = three_valued_reduct(db, total)
            reduct2 = gl_reduct(db, model)
            assert all(
                c.satisfied_by(total) for c in reduct3
            ) == reduct2.is_model(model)


class TestRenameAtoms:
    def test_mapping_rename(self):
        db = parse_database("a :- b.")
        renamed = rename_atoms(db, {"a": "x"})
        assert Clause.rule(["x"], ["b"]) in renamed.clauses

    def test_callable_rename(self):
        db = parse_database("a :- b.")
        renamed = rename_atoms(db, lambda atom: atom + "_1")
        assert renamed.vocabulary == {"a_1", "b_1"}

    def test_non_injective_rejected(self):
        db = parse_database("a :- b.")
        with pytest.raises(ValueError):
            rename_atoms(db, {"a": "b"})

    def test_models_transport(self):
        db = parse_database("a | b. c :- a.")
        renamed = rename_atoms(db, lambda atom: atom + "x")
        for model in all_interpretations(db.vocabulary):
            image = {a + "x" for a in model}
            assert db.is_model(model) == renamed.is_model(image)
