"""Tests for the extension modules: WFS, Reiter's CWA, and the
disjunctive state / closure objects."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NotPositiveError
from repro.logic.parser import parse_database, parse_formula
from repro.semantics import get_semantics
from repro.semantics.cwa import (
    cwa_closure,
    cwa_consistent_linear,
    cwa_consistent_theta,
    cwa_free_atoms,
)
from repro.semantics.state import (
    disjunctive_state,
    egcwa_closure_clauses,
    gcwa_closure_literals,
    state_atoms,
    wgcwa_closure_literals,
)
from repro.semantics.wfs import well_founded_model

from conftest import databases, positive_databases


# ----------------------------------------------------------------------
# Well-Founded Semantics
# ----------------------------------------------------------------------
@st.composite
def normal_programs(draw):
    """Random normal logic programs (single heads, no ICs)."""
    from repro.logic.clause import Clause
    from repro.logic.database import DisjunctiveDatabase

    atoms = ["a", "b", "c", "d"]
    count = draw(st.integers(1, 5))
    clauses = []
    for _ in range(count):
        head = draw(st.sampled_from(atoms))
        rest = [x for x in atoms if x != head]
        body_pos = draw(st.lists(st.sampled_from(rest), max_size=2,
                                 unique=True))
        body_neg = draw(st.lists(st.sampled_from(rest), max_size=1,
                                 unique=True))
        clauses.append(Clause.rule([head], body_pos, body_neg))
    return DisjunctiveDatabase(clauses, atoms)


class TestWellFounded:
    def test_even_loop_all_undefined(self, unstratified_db):
        model = well_founded_model(unstratified_db)
        assert model.undefined == {"a", "b"}

    def test_odd_loop_undefined(self):
        model = well_founded_model(parse_database("a :- not a."))
        assert model.undefined == {"a"}

    def test_stratified_program_is_total(self):
        model = well_founded_model(parse_database("a :- not b. c :- a."))
        assert model.is_total
        assert model.true == {"a", "c"}

    def test_definite_program_least_model(self):
        model = well_founded_model(parse_database("a. b :- a. c :- d."))
        assert model.true == {"a", "b"}
        assert model.is_total

    def test_rejects_disjunctive(self, simple_db):
        with pytest.raises(NotPositiveError):
            well_founded_model(simple_db)

    def test_rejects_integrity_clauses(self):
        with pytest.raises(NotPositiveError):
            well_founded_model(parse_database("a. :- a."))

    @given(normal_programs())
    def test_wfs_is_a_partial_stable_model(self, db):
        """Przymusinski: the well-founded model of an NLP is partial
        stable (PDSM extends WFS)."""
        from repro.semantics.pdsm import is_partial_stable

        assert is_partial_stable(db, well_founded_model(db))

    @given(normal_programs())
    def test_total_wfs_is_the_unique_stable_model(self, db):
        model = well_founded_model(db)
        if model.is_total:
            stable = get_semantics("dsm").model_set(db)
            assert stable == frozenset({model.to_total()})

    @given(normal_programs())
    def test_wfs_true_atoms_hold_in_every_stable_model(self, db):
        model = well_founded_model(db)
        for stable in get_semantics("dsm").model_set(db):
            assert model.true <= stable
            assert stable <= model.possible


# ----------------------------------------------------------------------
# Reiter's CWA
# ----------------------------------------------------------------------
class TestCwa:
    def test_disjunctive_inconsistency(self):
        """The paper's Section 3.1 motivation, as code."""
        db = parse_database("a | b.")
        assert cwa_free_atoms(db) == {"a", "b"}
        consistent, _ = cwa_consistent_linear(db)
        assert not consistent
        assert not get_semantics("cwa").has_model(db)

    def test_horn_databases_are_safe(self):
        db = parse_database("a. b :- a. c :- d.")
        assert cwa_free_atoms(db) == {"c", "d"}
        consistent, calls = cwa_consistent_linear(db)
        assert consistent
        assert calls == len(db.vocabulary) + 1

    def test_closure_models(self):
        db = parse_database("a. b :- c.")
        models = get_semantics("cwa").model_set(db)
        assert {frozenset(m) for m in models} == {frozenset({"a"})}

    def test_cwa_inference(self):
        db = parse_database("a. b :- c.")
        cwa = get_semantics("cwa")
        assert cwa.infers(db, parse_formula("a & ~b & ~c"))

    @given(databases(max_clauses=4))
    def test_oracle_matches_brute(self, db):
        oracle = get_semantics("cwa").model_set(db)
        brute = get_semantics("cwa", engine="brute").model_set(db)
        assert oracle == brute

    @given(databases(max_clauses=4))
    def test_theta_matches_linear(self, db):
        linear, _ = cwa_consistent_linear(db)
        theta = cwa_consistent_theta(db)
        assert theta.consistent == linear
        assert theta.np_calls <= theta.call_bound

    def test_theta_call_count_is_logarithmic(self):
        from repro.workloads import exclusive_pairs

        db = exclusive_pairs(4)  # 8 atoms
        theta = cwa_consistent_theta(db)
        assert not theta.consistent  # all 8 atoms free, closure kills a|b
        assert theta.free_count == 8
        assert theta.np_calls <= theta.call_bound < 8


# ----------------------------------------------------------------------
# Disjunctive state and closure objects
# ----------------------------------------------------------------------
class TestDisjunctiveState:
    def test_simple_state(self, simple_db):
        state = disjunctive_state(simple_db)
        assert frozenset({"a", "b"}) in state
        # resolving c :- a with a|b derives c|b.
        assert frozenset({"b", "c"}) in state

    def test_state_atoms_match_horn_relaxation(self, simple_db):
        from repro.semantics.ddr import possibly_true_atoms

        full = disjunctive_state(simple_db, minimized=False)
        assert state_atoms(full) == possibly_true_atoms(simple_db)

    @given(positive_databases(max_clauses=4))
    def test_unminimized_state_atoms_match_relaxation(self, db):
        """Ross & Topor's full T-up-omega has exactly the possibly-true
        atoms (the Horn-relaxation fixpoint DDR uses)."""
        from repro.semantics.ddr import possibly_true_atoms

        full = disjunctive_state(db, minimized=False)
        assert state_atoms(full) == possibly_true_atoms(db)

    def test_minimized_vs_full_state_differ(self):
        """{a. a|b.}: a|b is derivable but not minimal — the weak
        closure (DDR) keeps b possible, GCWA negates it."""
        db = parse_database("a. a | b.")
        assert state_atoms(disjunctive_state(db, minimized=False)) == {
            "a", "b"
        }
        assert state_atoms(disjunctive_state(db, minimized=True)) == {"a"}

    @given(positive_databases(max_clauses=4))
    def test_minker_theorem(self, db):
        """Minker's theorem: for positive IC-free DDBs, an atom is in
        some minimal derivable disjunction iff it is in some minimal
        model — proof theory agrees with the Sigma2 model theory."""
        from repro.semantics.state import minimal_state_atoms

        assert minimal_state_atoms(db) == \
            frozenset(db.vocabulary) - gcwa_closure_literals(db)

    @given(positive_databases(max_clauses=4))
    def test_state_disjunctions_are_entailed(self, db):
        from repro.models.enumeration import all_models

        models = all_models(db)
        for disjunction in disjunctive_state(db):
            assert all(m & disjunction for m in models)

    def test_wgcwa_closure_matches_ddr(self, simple_db):
        from repro.semantics import get_semantics

        assert wgcwa_closure_literals(simple_db) == get_semantics(
            "ddr"
        ).negated_atoms(simple_db)

    @given(positive_databases(max_clauses=4))
    def test_wgcwa_closure_matches_ddr_random(self, db):
        from repro.semantics import get_semantics

        assert wgcwa_closure_literals(db) == get_semantics(
            "ddr"
        ).negated_atoms(db)

    def test_rejects_negation(self, unstratified_db):
        with pytest.raises(NotPositiveError):
            disjunctive_state(unstratified_db)

    def test_max_width_truncates(self):
        db = parse_database("a | b | c.")
        assert disjunctive_state(db, max_width=2) == frozenset()


class TestClosures:
    def test_egcwa_closure_on_exclusive_pair(self):
        db = parse_database("a | b.")
        closure = egcwa_closure_clauses(db)
        # Minimal models {a}, {b}: a ∧ b false in both.
        assert frozenset({"a", "b"}) in closure

    def test_size_one_closure_matches_gcwa(self):
        db = parse_database("a | b. c :- d.")
        closure = egcwa_closure_clauses(db)
        singletons = {next(iter(c)) for c in closure if len(c) == 1}
        assert singletons == gcwa_closure_literals(db)

    @given(positive_databases(max_clauses=3))
    def test_closure_preserves_minimal_models(self, db):
        """Augmenting DB with its EGCWA closure keeps MM unchanged."""
        from repro.logic.clause import Clause
        from repro.models.enumeration import minimal_models_brute

        closure = egcwa_closure_clauses(db, max_size=2)
        augmented = db.with_clauses(
            Clause.integrity(sorted(body)) for body in closure
        )
        assert set(minimal_models_brute(db)) == set(
            minimal_models_brute(augmented)
        )


# ----------------------------------------------------------------------
# Brave inference
# ----------------------------------------------------------------------
class TestBraveInference:
    def test_brave_vs_cautious(self, simple_db):
        egcwa = get_semantics("egcwa")
        a = parse_formula("a")
        assert egcwa.infers_brave(simple_db, a)
        assert not egcwa.infers(simple_db, a)

    def test_brave_false_when_nowhere(self, simple_db):
        egcwa = get_semantics("egcwa")
        assert not egcwa.infers_brave(simple_db, parse_formula("b & c"))

    @given(databases(max_clauses=4))
    def test_egcwa_brave_matches_brute(self, db):
        formula = parse_formula("a | ~b")
        assert get_semantics("egcwa").infers_brave(db, formula) == \
            get_semantics("egcwa", engine="brute").infers_brave(db, formula)

    @given(databases(max_clauses=4))
    def test_dsm_brave_matches_brute(self, db):
        formula = parse_formula("a & ~b")
        assert get_semantics("dsm").infers_brave(db, formula) == \
            get_semantics("dsm", engine="brute").infers_brave(db, formula)

    @given(databases(max_clauses=3))
    def test_pdsm_brave_matches_brute(self, db):
        formula = parse_formula("a")
        assert get_semantics("pdsm").infers_brave(db, formula) == \
            get_semantics("pdsm", engine="brute").infers_brave(db, formula)

    def test_dsm_brave_on_even_loop(self, unstratified_db):
        dsm = get_semantics("dsm")
        assert dsm.infers_brave(unstratified_db, parse_formula("a"))
        assert dsm.infers_brave(unstratified_db, parse_formula("b"))
        assert not dsm.infers_brave(unstratified_db, parse_formula("a & b"))
