"""Tests for the workload generators."""

import pytest

from repro.logic.cnf import cnf_atoms
from repro.semantics.stratification import is_stratified
from repro.workloads import (
    chain,
    disjunctive_chain,
    exclusive_pairs,
    exclusive_pairs_strict,
    pigeonhole_cnf_db,
    random_cnf,
    random_deductive_db,
    random_normal_db,
    random_positive_db,
    random_qbf2,
    random_query_formula,
    random_stratified_db,
    stratified_tower,
    win_move_cycle,
    win_move_path,
)


class TestRandomGenerators:
    def test_positive_db_regime(self):
        db = random_positive_db(6, 8, seed=1)
        assert db.is_positive
        assert len(db.vocabulary) == 6

    def test_deterministic_given_seed(self):
        assert random_positive_db(5, 6, seed=7) == random_positive_db(
            5, 6, seed=7
        )
        assert random_positive_db(5, 6, seed=7) != random_positive_db(
            5, 6, seed=8
        )

    def test_deductive_db_has_ics_with_high_fraction(self):
        db = random_deductive_db(6, 12, ic_fraction=0.9, seed=3)
        assert db.has_integrity_clauses
        assert db.is_deductive

    @pytest.mark.parametrize("seed", range(4))
    def test_stratified_generator_invariant(self, seed):
        assert is_stratified(random_stratified_db(6, 8, seed=seed))

    def test_normal_db_can_have_negation(self):
        db = random_normal_db(6, 10, neg_fraction=0.9, seed=0)
        assert db.has_negation

    def test_random_cnf_shape(self):
        cnf = random_cnf(5, 9, width=3, seed=0)
        assert len(cnf) == 9
        assert cnf_atoms(cnf) <= {f"x{i}" for i in range(1, 6)}

    def test_random_qbf2_is_exists_forall(self):
        qbf = random_qbf2(2, 3, seed=0)
        assert qbf.exists_first
        assert len(qbf.x) == 2 and len(qbf.y) == 3

    def test_random_query_formula_atoms(self):
        formula = random_query_formula(["a", "b"], depth=3, seed=0)
        assert formula.atoms() <= {"a", "b"}


class TestFamilies:
    def test_exclusive_pairs_minimal_model_count(self):
        from repro.models.enumeration import minimal_models_brute

        assert len(minimal_models_brute(exclusive_pairs(3))) == 8

    def test_exclusive_pairs_strict_model_count(self):
        from repro.models.enumeration import all_models

        assert len(all_models(exclusive_pairs_strict(3))) == 8

    def test_chain_unique_minimal_model(self):
        from repro.models.enumeration import minimal_models_brute

        (model,) = minimal_models_brute(chain(4))
        assert model == {"a1", "a2", "a3", "a4"}

    def test_disjunctive_chain_grows(self):
        from repro.models.enumeration import minimal_models_brute

        counts = [
            len(minimal_models_brute(disjunctive_chain(n)))
            for n in (1, 2, 3)
        ]
        assert counts[0] < counts[1] < counts[2]

    def test_win_move_cycle_parity(self):
        from repro.semantics import get_semantics

        assert not get_semantics("dsm").has_model(win_move_cycle(3))
        assert get_semantics("dsm").has_model(win_move_cycle(4))

    def test_win_move_path_stratified(self):
        assert is_stratified(win_move_path(6))

    def test_stratified_tower_is_stratified(self):
        assert is_stratified(stratified_tower(3))

    def test_pigeonhole_unsat(self):
        from repro.sat.solver import database_is_consistent

        assert not database_is_consistent(pigeonhole_cnf_db(3))
        assert not database_is_consistent(pigeonhole_cnf_db(4))
